//! POSIX file-system backend: one segment file per epoch plus the manifest.
//!
//! This is the paper's "conventional" storage path (local disk on Shamrock,
//! PVFS through its POSIX/FUSE interface on Grid'5000 — a parallel file
//! system mounts as a directory, so the same backend covers both).
//!
//! Layout inside the checkpoint directory:
//!
//! ```text
//! MANIFEST                  append-only commit log (see `manifest`)
//! epoch_0000000001.seg      page records of checkpoint 1 (stream shard 0)
//! epoch_0000000001.s1.seg   further stream shards of the same epoch,
//!                           created only under committer-stream contention
//! epoch_0000000002.seg      ...
//! full_0000000005.seg       compacted full image as of checkpoint 5
//! blob_layout               named metadata blobs (`put_blob`)
//! ```
//!
//! ## Segment format
//!
//! New segments are written as version 2; version 1 files remain readable
//! (the reader dispatches on the magic, so a directory can mix both after
//! an upgrade). All integers little-endian.
//!
//! * **v1** (`AICKSEG1` + epoch, 16-byte header), per page:
//!   `[page u64][len u32][crc64 u64][payload]` — always raw payloads.
//! * **v2** (`AICKSEG2` + epoch, 16-byte header), per page:
//!   `[page u64][enc u8][raw_len u32][stored_len u32][crc64 u64][stored]`
//!   where `enc` is a [`codec::Encoding`] and `crc64` covers the
//!   *uncompressed* payload — restore verification is independent of the
//!   encoding, and a corrupt compressed stream surfaces as `InvalidData`
//!   either from the decoder or from the CRC check.
//!
//! CRCs are verified on read; a mismatch fails the restore rather than
//! silently resurrecting corrupt state. The per-record encoding is chosen
//! by [`FileBackend::compression`] ([`Compression::Auto`] by default:
//! smallest of raw/RLE/LZ, falling back to raw so incompressible data costs
//! nothing but the 5 extra frame bytes).
//!
//! ## Compaction and crash recovery
//!
//! `install_compacted` writes the merged full image to `full_N.seg.tmp`,
//! fsyncs, renames it to `full_N.seg`, and only then appends the
//! `Full` manifest record — the atomic commit point. Garbage collection of
//! the superseded delta segments happens *after* the commit, so a crash at
//! any instant leaves either the old chain (no `Full` record yet) or the
//! new one (superseded segments are mere orphans). [`FileBackend::open`]
//! sweeps the directory for such orphans — `*.tmp` files, segment files
//! whose epoch was never committed (a process killed mid-checkpoint), and
//! segments superseded by a committed compaction — which also fixes the
//! historical leak of `.tmp`/segment files after an `abort()`-ed epoch
//! whose `remove_file` never ran (killed process). One process per
//! checkpoint directory is assumed, as everywhere in this backend.
//!
//! ## The vectored zero-copy write path
//!
//! An open epoch is a small set of per-stream **shard files**, each an
//! independent `AICKSEG2` chain: shard 0 keeps the legacy
//! `epoch_N.seg` name, shards `k >= 1` are `epoch_N.sK.seg`. A committer
//! stream claims the first momentarily uncontended shard slot (`try_lock`
//! scan), lazily creating its file on first touch — a single-stream
//! workload therefore never leaves shard 0 and produces the exact
//! pre-shard on-disk layout, while N contending streams fan out to up to
//! `MAX_STREAM_SHARDS` files with no writer mutex shared between them.
//!
//! Batches are submitted as `pwritev` vectored writes whose payload iovecs
//! point *straight at the caller's bytes* (live page memory, CoW slot
//! bytes): raw records are never copied in user space. Record frames and
//! compressed payloads stage into per-shard reusable aligned buffers
//! ([`crate::io::AlignedBuf`]), so the steady state allocates nothing.
//!
//! `finish` is a group commit: each shard is truncated to its last
//! complete batch (excising any torn tail a failed vectored write left)
//! and fsynced exactly once — fsyncs per epoch equal the shards actually
//! created (= 1 per active stream, 1 total when serial), never the batch
//! count — and then the single manifest record commits the epoch. The
//! manifest record's `records` count is the total across shards; the
//! reader walks every shard file of the epoch to end-of-file and
//! cross-checks that total, so a missing shard or torn frame fails restore
//! loudly instead of silently dropping pages.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{
    layout_blob_epoch, layout_blob_name, ChainEntry, EpochKind, EpochWriter, StorageBackend,
};
use crate::checksum::crc64;
use crate::codec::{self, Compression, Encoding};
use crate::io::{pwritev_full, AlignedBuf, IoCounters, IoStats};
use crate::manifest::{self, ManifestRecord, RecordKind};
use crate::scrub::{RecordMeta, RepairReport, VerifyReport};

/// Magic prefix of a version-1 segment file (raw records; still readable).
pub const SEGMENT_MAGIC_V1: &[u8; 8] = b"AICKSEG1";

/// Magic prefix of a version-2 segment file (per-record encodings).
pub const SEGMENT_MAGIC_V2: &[u8; 8] = b"AICKSEG2";

/// Compat alias for pre-v2 callers (names the v1 magic; new segments are
/// written with [`SEGMENT_MAGIC_V2`]).
pub const SEGMENT_MAGIC: &[u8; 8] = SEGMENT_MAGIC_V1;

/// Name of the append-only commit log inside the checkpoint directory
/// (shared by the read path and the epoch writer's commit point).
const MANIFEST_FILE: &str = "MANIFEST";

/// Length of a segment header (magic + epoch).
const SEGMENT_HEADER_LEN: usize = 16;

/// Length of a v2 record frame (page, encoding, lengths, CRC).
const FRAME_LEN_V2: usize = 25;

/// Upper bound (and default) on per-epoch stream shard files. Shards are
/// created lazily under actual contention, so a high default costs a
/// serial workload nothing.
pub const MAX_STREAM_SHARDS: usize = 8;

#[derive(Debug, Default)]
struct FileShared {
    /// Payload bytes accepted across all sessions (diagnostics).
    bytes_written: AtomicU64,
    /// Physical bytes stored after per-record encoding (diagnostics; equals
    /// `bytes_written` when compression never pays or is disabled).
    bytes_stored: AtomicU64,
    /// At most one epoch session may be open.
    epoch_open: AtomicBool,
    /// Serialises manifest appends between the committer's `finish` and the
    /// maintenance worker's compaction/retirement (a v1→v2 manifest
    /// migration rewrites the file, which must not race an append).
    manifest_lock: Mutex<()>,
    /// Cached high-water mark: highest epoch the manifest has ever recorded
    /// *plus one* (0 = manifest empty). Seeded once at `open` and advanced
    /// on every successful manifest append, so `begin_epoch` never re-reads
    /// the manifest.
    high_water: AtomicU64,
    /// Syscall-level I/O accounting (see [`IoStats`]).
    io: IoCounters,
    /// Lazily built per-epoch segment indexes for the random-access read
    /// path (`read_page_at`): page → record location, payloads untouched.
    /// Entries are dropped when compaction or retirement removes the epoch.
    page_index: Mutex<HashMap<u64, Arc<EpochIndex>>>,
}

impl FileShared {
    /// Record that `epoch` now exists in the manifest.
    fn note_epoch(&self, epoch: u64) {
        self.high_water
            .fetch_max(epoch.saturating_add(1), Ordering::AcqRel);
    }
}

/// File-system storage backend.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    shared: Arc<FileShared>,
    /// `fsync` on epoch finish (and blob writes). Disable only for
    /// throughput experiments where durability is irrelevant.
    pub sync_on_finish: bool,
    /// Per-record payload encoding policy for new segments (v2 framing
    /// either way; see the module docs).
    pub compression: Compression,
    /// Shard-slot count per epoch session (1 = the pre-shard single-file
    /// layout, always serialised).
    stream_shards: usize,
}

/// Where one record's stored payload lives during batch staging.
#[derive(Debug, Clone, Copy)]
enum PayloadSrc {
    /// Stored verbatim: the iovec points at the caller's bytes (zero-copy).
    Caller(usize),
    /// Compressed: staged at `(offset, len)` in the shard's reuse buffer.
    Staged(usize, usize),
}

/// One per-stream shard of an open epoch: an `AICKSEG2` file owned
/// exclusively by whichever stream holds the slot lock.
#[derive(Debug)]
struct Shard {
    file: File,
    /// Next write offset = bytes of complete batches (a failed vectored
    /// write never advances it, so its torn tail is overwritten by the
    /// next batch and excised by `finish`'s truncate).
    offset: u64,
    records: u64,
    payload_bytes: u64,
    /// Reusable staging for record frames (25 bytes per record).
    frames: AlignedBuf,
    /// Reusable staging for compressed payloads.
    staged: AlignedBuf,
    /// Per-record payload sources of the batch being staged.
    plan: Vec<PayloadSrc>,
}

impl Shard {
    /// Create shard `index` of `epoch` and write its segment header.
    fn create(dir: &Path, epoch: u64, index: usize, io: &IoCounters) -> io::Result<Shard> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(shard_path(dir, epoch, index))?;
        let mut header = [0u8; SEGMENT_HEADER_LEN];
        header[..8].copy_from_slice(SEGMENT_MAGIC_V2);
        header[8..].copy_from_slice(&epoch.to_le_bytes());
        let mut iov = [libc::iovec {
            iov_base: header.as_ptr() as *mut _,
            iov_len: header.len(),
        }];
        pwritev_full(&file, &mut iov, 0, io)?;
        Ok(Shard {
            file,
            offset: SEGMENT_HEADER_LEN as u64,
            records: 0,
            payload_bytes: 0,
            frames: AlignedBuf::new(),
            staged: AlignedBuf::new(),
            plan: Vec::new(),
        })
    }
}

/// Path of shard `index` of a delta epoch (index 0 keeps the legacy
/// single-file name so serial layouts stay byte-compatible).
fn shard_path(dir: &Path, epoch: u64, index: usize) -> PathBuf {
    if index == 0 {
        FileBackend::segment_path(dir, epoch)
    } else {
        dir.join(format!("epoch_{epoch:010}.s{index}.seg"))
    }
}

/// Best-effort removal of every shard file of a delta epoch (directory
/// scan, so it also cleans up after abnormal shard histories).
fn remove_delta_files(dir: &Path, epoch: u64) {
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if parse_segment_name(name, "epoch_").map(|(e, _)| e) == Some(epoch) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// All shard files of a delta epoch, ordered by shard index.
fn delta_shard_files(dir: &Path, epoch: u64) -> io::Result<Vec<PathBuf>> {
    let mut found: Vec<(u32, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
            continue;
        };
        if let Some((e, shard)) = parse_segment_name(&name, "epoch_") {
            if e == epoch {
                found.push((shard, entry.path()));
            }
        }
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

impl FileBackend {
    /// Open (creating if needed) a checkpoint directory, sweeping orphaned
    /// files left by a crashed or killed predecessor (uncommitted segments,
    /// `*.tmp` blobs/compactions, segments superseded by a committed
    /// compaction whose GC never ran).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let backend = Self {
            dir,
            shared: Arc::new(FileShared::default()),
            sync_on_finish: true,
            compression: Compression::default(),
            stream_shards: MAX_STREAM_SHARDS,
        };
        // One manifest read seeds both the orphan sweep and the cached
        // high-water mark; `begin_epoch` never reads the manifest again.
        let records = backend.manifest_records()?;
        if let Some(max) = records.iter().map(|r| r.epoch).max() {
            backend.shared.note_epoch(max);
        }
        backend.sweep_orphans(&records)?;
        Ok(backend)
    }

    /// Set the payload-encoding policy for subsequently written segments.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Cap the per-epoch stream shard count (clamped to
    /// `1..=MAX_STREAM_SHARDS`; 1 reproduces the serialized single-file
    /// writer, useful as an ablation baseline).
    pub fn with_stream_shards(mut self, shards: usize) -> Self {
        self.stream_shards = shards.clamp(1, MAX_STREAM_SHARDS);
        self
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(dir: &Path, epoch: u64) -> PathBuf {
        dir.join(format!("epoch_{epoch:010}.seg"))
    }

    fn full_path(dir: &Path, epoch: u64) -> PathBuf {
        dir.join(format!("full_{epoch:010}.seg"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    fn blob_path(&self, name: &str) -> PathBuf {
        // Restrict names to something path-safe.
        debug_assert!(
            name.bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-'),
            "blob name must be path-safe: {name}"
        );
        self.dir.join(format!("blob_{name}"))
    }

    fn manifest_records(&self) -> io::Result<Vec<ManifestRecord>> {
        manifest::read(&self.manifest_path())
    }

    /// The live chain as full manifest records (commit counts included).
    fn live_records(&self) -> io::Result<Vec<ManifestRecord>> {
        Ok(manifest::fold_live(&self.manifest_records()?))
    }

    /// Delete every file in the directory that the manifest (`records`)
    /// does not account for. Safe at open time only: no epoch session or
    /// compaction of *this* process can be in flight.
    fn sweep_orphans(&self, records: &[ManifestRecord]) -> io::Result<()> {
        let live: std::collections::BTreeMap<u64, RecordKind> = manifest::fold_live(records)
            .iter()
            .map(|r| (r.epoch, r.kind))
            .collect();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let doomed = if name.ends_with(".tmp") || name.ends_with(".mig") {
                // Half-written blob, compaction image or manifest migration.
                true
            } else if let Some((epoch, _shard)) = parse_segment_name(name, "epoch_") {
                // A delta shard is live only while its manifest record is
                // the live entry (a Full entry means compaction superseded
                // it; absence means the writer died before the commit or
                // after a retirement whose GC never ran).
                live.get(&epoch) != Some(&RecordKind::Delta)
            } else if let Some((epoch, shard)) = parse_segment_name(name, "full_") {
                // Full images are never sharded.
                shard != 0 || live.get(&epoch) != Some(&RecordKind::Full)
            } else if let Some(blob) = name.strip_prefix("blob_") {
                // A layout blob whose epoch is no longer live is garbage: a
                // crash between `put_blob` and the epoch's manifest commit
                // orphans it, and retirement GC may have died before the
                // unlink. Blobs with non-layout names are never touched.
                layout_blob_epoch(blob).is_some_and(|epoch| !live.contains_key(&epoch))
            } else {
                false
            };
            if doomed {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

/// Parse `"{prefix}{epoch:010}.seg"` / `"{prefix}{epoch:010}.s{k}.seg"`
/// names into `(epoch, shard)`; `None` for anything else.
fn parse_segment_name(name: &str, prefix: &str) -> Option<(u64, u32)> {
    let body = name.strip_prefix(prefix)?.strip_suffix(".seg")?;
    match body.split_once(".s") {
        None => Some((body.parse().ok()?, 0)),
        Some((epoch, shard)) => Some((epoch.parse().ok()?, shard.parse().ok()?)),
    }
}

/// Append one v2 page record under `compression`, returning the stored
/// (post-encoding) payload length. The CRC covers the uncompressed payload.
fn write_record_v2(
    w: &mut impl Write,
    page: u64,
    data: &[u8],
    compression: Compression,
) -> io::Result<u64> {
    let (enc, encoded) = codec::encode(data, compression);
    let stored = encoded.as_deref().unwrap_or(data);
    w.write_all(&page.to_le_bytes())?;
    w.write_all(&[enc as u8])?;
    w.write_all(&(data.len() as u32).to_le_bytes())?;
    w.write_all(&(stored.len() as u32).to_le_bytes())?;
    w.write_all(&crc64(data).to_le_bytes())?;
    w.write_all(stored)?;
    Ok(stored.len() as u64)
}

/// Open-epoch session on a [`FileBackend`]: a set of per-stream shard
/// slots with no lock shared between concurrent `write_pages` callers.
struct FileEpochWriter {
    shared: Arc<FileShared>,
    dir: PathBuf,
    epoch: u64,
    sync_on_finish: bool,
    compression: Compression,
    /// Set once `finish`/`abort` ran; `write_pages` then refuses.
    closed: AtomicBool,
    /// Shard slots; slot 0 is created by `begin_epoch` (legacy layout),
    /// the rest lazily on first claim under contention.
    shards: Box<[Mutex<Option<Shard>>]>,
    /// Round-robin pick for the rare moment every slot is busy.
    next_slot: AtomicUsize,
}

impl FileEpochWriter {
    fn release_session(&self) {
        self.shared.epoch_open.store(false, Ordering::Release);
    }

    /// Run `f` on an exclusively held shard: the first momentarily
    /// uncontended slot wins (creating its file on first touch), so a lone
    /// stream always lands in shard 0 while contending streams fan out.
    fn with_shard<R>(&self, f: impl FnOnce(&mut Shard) -> io::Result<R>) -> io::Result<R> {
        for (index, slot) in self.shards.iter().enumerate() {
            if let Some(mut guard) = slot.try_lock() {
                return f(self.ensure_shard(&mut guard, index)?);
            }
        }
        // Every slot busy: block on one, round-robin.
        let index = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut guard = self.shards[index].lock();
        f(self.ensure_shard(&mut guard, index)?)
    }

    fn ensure_shard<'a>(
        &self,
        slot: &'a mut Option<Shard>,
        index: usize,
    ) -> io::Result<&'a mut Shard> {
        if slot.is_none() {
            *slot = Some(Shard::create(
                &self.dir,
                self.epoch,
                index,
                &self.shared.io,
            )?);
        }
        Ok(slot.as_mut().unwrap())
    }

    /// Stage one batch into `shard`'s reusable buffers and submit it as a
    /// single vectored write. Raw payload iovecs point at the caller's
    /// bytes — the zero-copy path; compressed payloads stage once into the
    /// shard's aligned reuse buffer.
    fn write_batch(&self, shard: &mut Shard, batch: &[(u64, &[u8])]) -> io::Result<()> {
        shard.frames.clear();
        shard.staged.clear();
        shard.plan.clear();
        let mut payload_bytes = 0u64;
        let mut stored_bytes = 0u64;
        for &(page, data) in batch {
            let (enc, encoded) = codec::encode(data, self.compression);
            let src = match encoded {
                None => PayloadSrc::Caller(data.len()),
                Some(v) => PayloadSrc::Staged(shard.staged.extend_from_slice(&v), v.len()),
            };
            let stored_len = match src {
                PayloadSrc::Caller(len) | PayloadSrc::Staged(_, len) => len,
            };
            let mut frame = [0u8; FRAME_LEN_V2];
            frame[0..8].copy_from_slice(&page.to_le_bytes());
            frame[8] = enc as u8;
            frame[9..13].copy_from_slice(&(data.len() as u32).to_le_bytes());
            frame[13..17].copy_from_slice(&(stored_len as u32).to_le_bytes());
            frame[17..25].copy_from_slice(&crc64(data).to_le_bytes());
            shard.frames.extend_from_slice(&frame);
            shard.plan.push(src);
            payload_bytes += data.len() as u64;
            stored_bytes += stored_len as u64;
        }
        // Staging buffers are final — pointers are stable from here on.
        let frames_base = shard.frames.as_ptr();
        let staged_base = shard.staged.as_ptr();
        let mut iov: Vec<libc::iovec> = Vec::with_capacity(batch.len() * 2);
        for (i, src) in shard.plan.iter().enumerate() {
            iov.push(libc::iovec {
                iov_base: unsafe { frames_base.add(i * FRAME_LEN_V2) } as *mut _,
                iov_len: FRAME_LEN_V2,
            });
            match *src {
                PayloadSrc::Caller(len) if len > 0 => iov.push(libc::iovec {
                    iov_base: batch[i].1.as_ptr() as *mut _,
                    iov_len: len,
                }),
                PayloadSrc::Staged(at, len) => iov.push(libc::iovec {
                    iov_base: unsafe { staged_base.add(at) } as *mut _,
                    iov_len: len,
                }),
                PayloadSrc::Caller(_) => {} // empty payload: frame only
            }
        }
        let written = pwritev_full(&shard.file, &mut iov, shard.offset, &self.shared.io)?;
        shard.offset += written;
        shard.records += batch.len() as u64;
        shard.payload_bytes += payload_bytes;
        self.shared
            .bytes_written
            .fetch_add(payload_bytes, Ordering::Relaxed);
        self.shared
            .bytes_stored
            .fetch_add(stored_bytes, Ordering::Relaxed);
        Ok(())
    }
}

impl EpochWriter for FileEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::other("epoch session closed"));
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.with_shard(|shard| self.write_batch(shard, batch))
    }

    fn finish(&self) -> io::Result<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Err(io::Error::other("epoch session closed"));
        }
        let result = (|| {
            // The finish contract says every write_pages call has
            // returned, so these locks are uncontended.
            let shards: Vec<Shard> = self
                .shards
                .iter()
                .filter_map(|slot| slot.lock().take())
                .collect();
            let records: u64 = shards.iter().map(|s| s.records).sum();
            let payload_bytes: u64 = shards.iter().map(|s| s.payload_bytes).sum();
            // Group commit: excise any torn tail a failed vectored write
            // left past the last complete batch, then one fsync per shard
            // touched — none were paid on the write path. Multi-shard
            // epochs issue the fsyncs concurrently: they wait on the same
            // device, so overlapping them costs the epoch one flush
            // latency, not one per shard.
            let sync = self.sync_on_finish;
            let seal = move |file: &File, offset: u64| -> io::Result<()> {
                file.set_len(offset)?;
                if sync {
                    file.sync_all()?;
                }
                Ok(())
            };
            match &shards[..] {
                [] => {}
                [shard] => seal(&shard.file, shard.offset)?,
                many => std::thread::scope(|scope| {
                    let waves: Vec<_> = many
                        .iter()
                        .map(|shard| {
                            let (file, offset) = (&shard.file, shard.offset);
                            scope.spawn(move || seal(file, offset))
                        })
                        .collect();
                    waves
                        .into_iter()
                        .try_for_each(|wave| wave.join().expect("shard seal panicked"))
                })?,
            }
            if sync {
                self.shared
                    .io
                    .segment_fsyncs
                    .fetch_add(shards.len() as u64, Ordering::Relaxed);
            }
            // Commit point: the manifest record makes the epoch visible.
            let _manifest = self.shared.manifest_lock.lock();
            manifest::append(
                &self.dir.join(MANIFEST_FILE),
                ManifestRecord::delta(self.epoch, records, payload_bytes),
            )?;
            self.shared
                .io
                .manifest_appends
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .io
                .manifest_fsyncs
                .fetch_add(1, Ordering::Relaxed);
            self.shared.note_epoch(self.epoch);
            Ok(())
        })();
        if result.is_err() {
            // Failed commit: the manifest never saw the epoch, so drop the
            // shard files like an abort would.
            remove_delta_files(&self.dir, self.epoch);
        }
        // Win or lose, the session is over — a finish error must not wedge
        // the backend (`begin_epoch` would otherwise refuse forever).
        self.release_session();
        result
    }

    fn abort(&self) -> io::Result<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Ok(()); // already finished or aborted
        }
        for slot in self.shards.iter() {
            drop(slot.lock().take());
        }
        // Best-effort cleanup; the manifest never saw this epoch, so
        // leftover files would be ignored (and swept at reopen) anyway.
        remove_delta_files(&self.dir, self.epoch);
        self.release_session();
        Ok(())
    }
}

impl Drop for FileEpochWriter {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::Acquire) {
            let _ = self.abort();
        }
    }
}

impl FileBackend {
    /// `begin_epoch` body returning the concrete writer (separated so
    /// white-box tests can reach shard slots directly).
    fn begin_epoch_impl(&self, epoch: u64) -> io::Result<FileEpochWriter> {
        if self.shared.epoch_open.swap(true, Ordering::AcqRel) {
            return Err(io::Error::other("previous epoch still open"));
        }
        let open_or_err = (|| {
            // Epoch numbers must rise above everything the manifest ever
            // recorded — including retired epochs, whose numbers must not
            // be reused after a drain or compaction. The cached high-water
            // mark answers this without re-reading the manifest.
            let hw = self.shared.high_water.load(Ordering::Acquire);
            if hw != 0 && epoch < hw {
                return Err(io::Error::other(format!(
                    "epoch {epoch} not greater than committed epoch {}",
                    hw - 1
                )));
            }
            // Shard 0 is created eagerly: an epoch finished without writes
            // still leaves a readable (header-only) segment, as before.
            Shard::create(&self.dir, epoch, 0, &self.shared.io)
        })();
        match open_or_err {
            Ok(shard0) => {
                let mut slots = Vec::with_capacity(self.stream_shards);
                slots.push(Mutex::new(Some(shard0)));
                for _ in 1..self.stream_shards {
                    slots.push(Mutex::new(None));
                }
                Ok(FileEpochWriter {
                    shared: Arc::clone(&self.shared),
                    dir: self.dir.clone(),
                    epoch,
                    sync_on_finish: self.sync_on_finish,
                    compression: self.compression,
                    closed: AtomicBool::new(false),
                    shards: slots.into_boxed_slice(),
                    next_slot: AtomicUsize::new(0),
                })
            }
            Err(e) => {
                self.shared.epoch_open.store(false, Ordering::Release);
                Err(e)
            }
        }
    }
}

impl StorageBackend for FileBackend {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        Ok(Box::new(self.begin_epoch_impl(epoch)?))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let path = self.blob_path(name);
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            if self.sync_on_finish {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, &path)?;
        // The rename only becomes crash-durable once the directory entry
        // itself reaches disk. Without this, a crash after the epoch's
        // manifest commit could lose the layout blob of a committed epoch
        // and turn a clean restart into a restore error.
        if self.sync_on_finish {
            self.sync_dir()?;
        }
        Ok(())
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.blob_path(name)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.blob_path(name)) {
            Ok(()) => {
                if self.sync_on_finish {
                    self.sync_dir()?;
                }
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
                continue;
            };
            if name.ends_with(".tmp") {
                continue;
            }
            if let Some(blob) = name.strip_prefix("blob_") {
                names.push(blob.to_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        Ok(self.live_records()?.iter().map(|r| r.epoch).collect())
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        // Over *all* manifest records, not just the live chain: a retired
        // epoch's number stays burned (`begin_epoch` enforces the same).
        // Served from the cache seeded at `open` and advanced on append.
        let hw = self.shared.high_water.load(Ordering::Acquire);
        Ok((hw != 0).then(|| hw - 1))
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        let rec = self
            .live_records()?
            .into_iter()
            .find(|r| r.epoch == epoch)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("epoch {epoch} not committed (or compacted away)"),
                )
            })?;
        let total = match rec.kind {
            RecordKind::Full => {
                read_segment_to_eof(&Self::full_path(&self.dir, epoch), epoch, visit)?
            }
            _ => {
                let shards = delta_shard_files(&self.dir, epoch)?;
                if shards.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("epoch {epoch}: segment file missing"),
                    ));
                }
                let mut total = 0u64;
                for path in shards {
                    total += read_segment_to_eof(&path, epoch, visit)?;
                }
                total
            }
        };
        // Cross-check against the committed count: a vanished shard or a
        // truncated chain must fail restore loudly.
        if total != rec.records {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "epoch {epoch}: manifest committed {} records but segments hold {total}",
                    rec.records
                ),
            ));
        }
        Ok(())
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        Ok(self.epoch_index(epoch)?.pages.clone())
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        let index = self.epoch_index(epoch)?;
        let Some(loc) = index.by_page.get(&page) else {
            return Ok(None);
        };
        let mut stored = vec![0u8; loc.stored_len as usize];
        index.files[loc.file as usize].read_exact_at(&mut stored, loc.offset)?;
        self.shared.io.page_reads.fetch_add(1, Ordering::Relaxed);
        let enc = Encoding::from_u8(loc.enc)?;
        let decoded = codec::decode(enc, &stored, loc.raw_len as usize)?;
        let payload = decoded.unwrap_or(stored);
        if crc64(&payload) != loc.crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("CRC mismatch for page {page} in epoch {epoch}"),
            ));
        }
        Ok(Some(payload))
    }

    fn bytes_written(&self) -> u64 {
        self.shared.bytes_written.load(Ordering::Relaxed)
    }

    fn bytes_stored(&self) -> u64 {
        self.shared.bytes_stored.load(Ordering::Relaxed)
    }

    fn supports_compaction(&self) -> bool {
        true
    }

    fn chain(&self) -> io::Result<Vec<ChainEntry>> {
        Ok(self
            .live_records()?
            .iter()
            .map(|r| ChainEntry {
                epoch: r.epoch,
                kind: match r.kind {
                    RecordKind::Full => EpochKind::Full,
                    _ => EpochKind::Delta,
                },
            })
            .collect())
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        let superseded: Vec<ManifestRecord> = self
            .live_records()?
            .into_iter()
            .filter(|r| r.epoch <= into)
            .collect();
        if !superseded.iter().any(|r| r.epoch == into) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("install_compacted: epoch {into} is not live"),
            ));
        }
        // 1. Write the full image to a temp name and make it durable.
        let final_path = Self::full_path(&self.dir, into);
        let tmp = final_path.with_extension("seg.tmp");
        let mut payload_bytes = 0u64;
        {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::with_capacity(1 << 20, file);
            w.write_all(SEGMENT_MAGIC_V2)?;
            w.write_all(&into.to_le_bytes())?;
            for (page, data) in records {
                // The folded full segment re-encodes every surviving page
                // under the current policy (deltas may have been written
                // raw by an older process; the rewrite is the natural place
                // to shrink them).
                write_record_v2(&mut w, *page, data, self.compression)?;
                payload_bytes += data.len() as u64;
            }
            let file = w
                .into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?;
            if self.sync_on_finish {
                file.sync_all()?;
                self.shared
                    .io
                    .segment_fsyncs
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        // 2. Move it into place (still invisible: no manifest record yet)
        //    and make the directory entry durable before the commit record
        //    can reference it.
        fs::rename(&tmp, &final_path)?;
        if self.sync_on_finish {
            self.sync_dir()?;
        }
        // 3. Commit: one durable manifest append. A crash before this line
        //    leaves the old chain intact plus one orphan file.
        {
            let _manifest = self.shared.manifest_lock.lock();
            manifest::append(
                &self.manifest_path(),
                ManifestRecord::full(into, records.len() as u64, payload_bytes, from),
            )?;
            self.shared
                .io
                .manifest_appends
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .io
                .manifest_fsyncs
                .fetch_add(1, Ordering::Relaxed);
            self.shared.note_epoch(into);
        }
        // 4. GC the superseded segments — and the layout blobs of epochs
        //    below the new horizon (restore can no longer target them; the
        //    blob at `into` itself stays, restore needs it). A crash in
        //    here leaves orphans that the next `open` sweeps; restore is
        //    already correct.
        self.invalidate_index(superseded.iter().map(|r| r.epoch));
        for r in superseded {
            match r.kind {
                RecordKind::Full => {
                    let _ = fs::remove_file(Self::full_path(&self.dir, r.epoch));
                }
                _ => remove_delta_files(&self.dir, r.epoch),
            }
            if r.epoch < into {
                let _ = fs::remove_file(self.blob_path(&layout_blob_name(r.epoch)));
            }
        }
        Ok(())
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        self.remove_epochs(&[epoch])
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        if epochs.is_empty() {
            return Ok(());
        }
        let live = self.live_records()?;
        let mut doomed = Vec::with_capacity(epochs.len());
        let mut batch = Vec::with_capacity(epochs.len());
        for &epoch in epochs {
            let rec = live.iter().find(|r| r.epoch == epoch).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("epoch {epoch} not live"))
            })?;
            doomed.push(*rec);
            batch.push(ManifestRecord::compacted_into(epoch, 0));
        }
        {
            // One durable manifest append for the whole batch: N
            // retirements, one fsync.
            let _manifest = self.shared.manifest_lock.lock();
            manifest::append_batch(&self.manifest_path(), &batch)?;
            self.shared
                .io
                .manifest_appends
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.shared
                .io
                .manifest_fsyncs
                .fetch_add(1, Ordering::Relaxed);
        }
        self.invalidate_index(doomed.iter().map(|r| r.epoch));
        for rec in doomed {
            match rec.kind {
                RecordKind::Full => {
                    let _ = fs::remove_file(Self::full_path(&self.dir, rec.epoch));
                }
                _ => remove_delta_files(&self.dir, rec.epoch),
            }
            // A retired epoch can never be restored again, so its layout
            // blob is garbage too (this was the historical leak: blobs
            // accumulated one per checkpoint, forever).
            let _ = fs::remove_file(self.blob_path(&layout_blob_name(rec.epoch)));
        }
        Ok(())
    }

    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        let rec = self.live_record(epoch)?;
        let mut report = VerifyReport::new(epoch);
        let paths = match rec.kind {
            RecordKind::Full => vec![Self::full_path(&self.dir, epoch)],
            _ => delta_shard_files(&self.dir, epoch)?,
        };
        if paths.is_empty() {
            report
                .structural
                .push(format!("epoch {epoch}: segment file missing"));
            return Ok(report);
        }
        let mut walk_clean = true;
        for path in &paths {
            let sv = match verify_segment_file(path, epoch) {
                Ok(sv) => sv,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    walk_clean = false;
                    report
                        .structural
                        .push(format!("epoch {epoch}: shard vanished mid-verify"));
                    continue;
                }
                Err(e) => return Err(e),
            };
            report.records += sv.records;
            report.bytes += sv.payload_bytes;
            for page in sv.corrupt {
                report.note_corrupt(page);
            }
            if let Some(s) = sv.structural {
                walk_clean = false;
                report.structural.push(s);
            }
        }
        // Only a clean walk can meaningfully disagree with the manifest: a
        // truncated shard already under-counts by construction.
        if walk_clean && report.records != rec.records {
            report.structural.push(format!(
                "epoch {epoch}: manifest committed {} records but segments hold {}",
                rec.records, report.records
            ));
        }
        Ok(report)
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        let rec = self.live_record(epoch)?;
        let final_path = match rec.kind {
            RecordKind::Full => Self::full_path(&self.dir, epoch),
            _ => Self::segment_path(&self.dir, epoch),
        };
        // 1. Stage the replacement segment and make it durable. The old
        //    segment files are never read — repair must work when they are
        //    arbitrarily damaged.
        let tmp = final_path.with_extension("seg.tmp");
        let mut payload_bytes = 0u64;
        {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::with_capacity(1 << 20, file);
            w.write_all(SEGMENT_MAGIC_V2)?;
            w.write_all(&epoch.to_le_bytes())?;
            for (page, data) in records {
                write_record_v2(&mut w, *page, data, self.compression)?;
                payload_bytes += data.len() as u64;
            }
            let file = w
                .into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?;
            if self.sync_on_finish {
                file.sync_all()?;
                self.shared
                    .io
                    .segment_fsyncs
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        // 2. Collapse the epoch to exactly one file: stale extra shards
        //    would double-count against the corrective manifest record.
        //    A crash in here leaves the epoch detectably damaged (it
        //    already was) and the next scrub cycle repairs it again.
        if rec.kind != RecordKind::Full {
            for path in delta_shard_files(&self.dir, epoch)? {
                if path != final_path {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        fs::rename(&tmp, &final_path)?;
        if self.sync_on_finish {
            self.sync_dir()?;
        }
        // 3. Corrective commit: re-appending the epoch's record replaces it
        //    in the folded view (latest record per epoch wins), repairing a
        //    damaged count/byte field while preserving the chain kind.
        let fixed = match rec.kind {
            RecordKind::Full => {
                ManifestRecord::full(epoch, records.len() as u64, payload_bytes, rec.aux)
            }
            _ => ManifestRecord::delta(epoch, records.len() as u64, payload_bytes),
        };
        {
            let _manifest = self.shared.manifest_lock.lock();
            manifest::append(&self.manifest_path(), fixed)?;
            self.shared
                .io
                .manifest_appends
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .io
                .manifest_fsyncs
                .fetch_add(1, Ordering::Relaxed);
        }
        self.invalidate_index([epoch]);
        Ok(())
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        let rec = self.live_record(epoch)?;
        // The only damage a lone file backend can heal from its own bytes
        // is a corrupted manifest commit count: every record still
        // verifies, so recounting the segments restores agreement. Payload
        // damage needs a redundant source (replica, parity, another level).
        let report = self.verify_epoch(epoch)?;
        let count_damage_only = report.corrupt_pages.is_empty()
            && report.structural.len() == 1
            && report.structural[0].contains("manifest committed");
        if !count_damage_only {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("no redundant source to repair epoch {epoch}"),
            ));
        }
        let fixed = match rec.kind {
            RecordKind::Full => ManifestRecord::full(epoch, report.records, report.bytes, rec.aux),
            _ => ManifestRecord::delta(epoch, report.records, report.bytes),
        };
        {
            let _manifest = self.shared.manifest_lock.lock();
            manifest::append(&self.manifest_path(), fixed)?;
            self.shared
                .io
                .manifest_appends
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .io
                .manifest_fsyncs
                .fetch_add(1, Ordering::Relaxed);
        }
        self.invalidate_index([epoch]);
        Ok(RepairReport {
            epoch,
            pages: Vec::new(),
            rewrote_segment: false,
            source: "manifest recount".to_owned(),
        })
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        let index = self.epoch_index(epoch)?;
        Ok(index.by_page.get(&page).map(|loc| RecordMeta {
            raw_len: loc.raw_len,
            crc: loc.crc,
        }))
    }

    fn io_stats(&self) -> IoStats {
        self.shared.io.snapshot()
    }
}

/// Segment-format version, dispatched on the file's magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegmentVersion {
    V1,
    V2,
}

/// Read and validate a segment header, returning the format version.
fn read_segment_header(reader: &mut impl Read, epoch: u64) -> io::Result<SegmentVersion> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    let version = match &header[..8] {
        m if m == SEGMENT_MAGIC_V1 => SegmentVersion::V1,
        m if m == SEGMENT_MAGIC_V2 => SegmentVersion::V2,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad segment magic",
            ))
        }
    };
    let seg_epoch = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if seg_epoch != epoch {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("segment claims epoch {seg_epoch}, expected {epoch}"),
        ));
    }
    Ok(version)
}

/// Fill `buf` from `r`, distinguishing a clean end-of-file at a frame
/// boundary (`Ok(false)`) from a torn frame mid-read (`InvalidData`).
fn read_frame(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "torn record frame at segment tail",
                ))
            }
            n => filled += n,
        }
    }
    Ok(true)
}

/// Stream one segment (shard) file of either version to end-of-file,
/// verifying magic, epoch and per-record CRCs — always computed over the
/// uncompressed payload, so a compressed record that decodes wrongly can
/// never pass verification. Returns the record count read; the caller
/// cross-checks the total against the manifest.
fn read_segment_to_eof(
    path: &Path,
    epoch: u64,
    visit: &mut dyn FnMut(u64, &[u8]),
) -> io::Result<u64> {
    let mut reader = BufReader::with_capacity(1 << 20, File::open(path)?);
    let version = read_segment_header(&mut reader, epoch)?;
    let mut stored = Vec::new();
    let mut count = 0u64;
    loop {
        let (page, crc, raw_len, enc) = match version {
            SegmentVersion::V1 => {
                let mut frame = [0u8; 20];
                if !read_frame(&mut reader, &mut frame)? {
                    break;
                }
                let page = u64::from_le_bytes(frame[0..8].try_into().unwrap());
                let len = u32::from_le_bytes(frame[8..12].try_into().unwrap()) as usize;
                let crc = u64::from_le_bytes(frame[12..20].try_into().unwrap());
                stored.resize(len, 0);
                reader.read_exact(&mut stored)?;
                (page, crc, len, Encoding::Raw)
            }
            SegmentVersion::V2 => {
                let mut frame = [0u8; FRAME_LEN_V2];
                if !read_frame(&mut reader, &mut frame)? {
                    break;
                }
                let page = u64::from_le_bytes(frame[0..8].try_into().unwrap());
                let enc = Encoding::from_u8(frame[8])?;
                let raw_len = u32::from_le_bytes(frame[9..13].try_into().unwrap()) as usize;
                let stored_len = u32::from_le_bytes(frame[13..17].try_into().unwrap()) as usize;
                let crc = u64::from_le_bytes(frame[17..25].try_into().unwrap());
                stored.resize(stored_len, 0);
                reader.read_exact(&mut stored)?;
                (page, crc, raw_len, enc)
            }
        };
        let decoded = codec::decode(enc, &stored, raw_len)?;
        let payload = decoded.as_deref().unwrap_or(&stored);
        if crc64(payload) != crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("CRC mismatch for page {page} in epoch {epoch}"),
            ));
        }
        visit(page, payload);
        count += 1;
    }
    Ok(count)
}

/// Damage inventory of one segment (shard) file, from
/// [`verify_segment_file`]'s forgiving walk.
struct SegmentVerify {
    /// Records whose frames were walked, damaged or not.
    records: u64,
    /// Sum of the walked records' uncompressed payload lengths.
    payload_bytes: u64,
    /// Pages whose stored record failed decode or CRC verification.
    corrupt: Vec<u64>,
    /// Damage that ended the walk early (bad header, torn frame, a frame
    /// overrunning the file) — the rest of the file is unaccounted for.
    structural: Option<String>,
}

/// Walk one segment file end-to-end verifying every record but — unlike
/// [`read_segment_to_eof`] — continuing past per-record damage: a flipped
/// payload, CRC or encoding byte condemns that page alone, because the
/// frame's `stored_len` still tells the walk where the next record starts.
/// Only structural damage (an unwalkable frame chain) stops the scan.
/// `Err` is reserved for environmental failures (the file vanishing
/// mid-walk), so scrub pacing can distinguish "damaged" from "unreadable".
fn verify_segment_file(path: &Path, epoch: u64) -> io::Result<SegmentVerify> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::with_capacity(1 << 20, file);
    let mut out = SegmentVerify {
        records: 0,
        payload_bytes: 0,
        corrupt: Vec::new(),
        structural: None,
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("segment");
    let version = match read_segment_header(&mut reader, epoch) {
        Ok(v) => v,
        Err(e)
            if e.kind() == io::ErrorKind::InvalidData
                || e.kind() == io::ErrorKind::UnexpectedEof =>
        {
            out.structural = Some(format!("{name}: {e}"));
            return Ok(out);
        }
        Err(e) => return Err(e),
    };
    let mut offset = SEGMENT_HEADER_LEN as u64;
    let mut stored = Vec::new();
    loop {
        let (page, crc, raw_len, stored_len, enc) = match version {
            SegmentVersion::V1 => {
                let mut frame = [0u8; 20];
                match read_frame(&mut reader, &mut frame) {
                    Ok(false) => break,
                    Ok(true) => {}
                    Err(e) => {
                        out.structural = Some(format!("{name}: {e}"));
                        break;
                    }
                }
                let page = u64::from_le_bytes(frame[0..8].try_into().unwrap());
                let len = u32::from_le_bytes(frame[8..12].try_into().unwrap());
                let crc = u64::from_le_bytes(frame[12..20].try_into().unwrap());
                offset += 20;
                (page, crc, len, len, Encoding::Raw as u8)
            }
            SegmentVersion::V2 => {
                let mut frame = [0u8; FRAME_LEN_V2];
                match read_frame(&mut reader, &mut frame) {
                    Ok(false) => break,
                    Ok(true) => {}
                    Err(e) => {
                        out.structural = Some(format!("{name}: {e}"));
                        break;
                    }
                }
                let page = u64::from_le_bytes(frame[0..8].try_into().unwrap());
                let raw_len = u32::from_le_bytes(frame[9..13].try_into().unwrap());
                let stored_len = u32::from_le_bytes(frame[13..17].try_into().unwrap());
                let crc = u64::from_le_bytes(frame[17..25].try_into().unwrap());
                offset += FRAME_LEN_V2 as u64;
                (page, crc, raw_len, stored_len, frame[8])
            }
        };
        if offset + stored_len as u64 > file_len {
            // A corrupted length field would otherwise desync the walk (or
            // ask for gigabytes); everything past here is unaccounted.
            out.structural = Some(format!(
                "{name}: record for page {page} overruns the segment"
            ));
            break;
        }
        stored.resize(stored_len as usize, 0);
        reader.read_exact(&mut stored)?;
        offset += stored_len as u64;
        out.records += 1;
        out.payload_bytes += raw_len as u64;
        let verified = Encoding::from_u8(enc)
            .and_then(|enc| codec::decode(enc, &stored, raw_len as usize))
            .map(|decoded| crc64(decoded.as_deref().unwrap_or(&stored)) == crc)
            .unwrap_or(false);
        if !verified {
            out.corrupt.push(page);
        }
    }
    Ok(out)
}

/// Location of one page record inside an epoch's segment files: enough to
/// read and verify the payload with a single positioned read, no streaming.
#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    /// Index into [`EpochIndex::files`].
    file: u32,
    /// Byte offset of the *stored* payload (the frame precedes it).
    offset: u64,
    /// Raw encoding byte from the frame, validated only when the record is
    /// actually read — an at-rest flip of one record's encoding byte must
    /// surface as that page's `InvalidData`, not break indexing the epoch.
    enc: u8,
    raw_len: u32,
    stored_len: u32,
    /// CRC-64 over the uncompressed payload, from the record frame.
    crc: u64,
}

/// Frame-walked index of one committed epoch: every record's location, no
/// payload bytes materialised. File handles stay open so `read_page_at`
/// is one `pread` + decode, immune to concurrent renames of the paths.
#[derive(Debug)]
struct EpochIndex {
    files: Vec<File>,
    /// Page of every record, in record (arrival) order — possibly with
    /// duplicates, matching `read_epoch` visit order.
    pages: Vec<u64>,
    /// Latest-wins location per page.
    by_page: HashMap<u64, RecordLoc>,
}

/// Walk one segment file's frames (skipping payloads with relative seeks)
/// into `pages`/`by_page`, returning the open handle for positioned reads.
fn index_segment(
    path: &Path,
    epoch: u64,
    file_idx: u32,
    pages: &mut Vec<u64>,
    by_page: &mut HashMap<u64, RecordLoc>,
) -> io::Result<File> {
    let file = File::open(path)?;
    let mut reader = BufReader::with_capacity(1 << 16, &file);
    let version = read_segment_header(&mut reader, epoch)?;
    let mut offset = SEGMENT_HEADER_LEN as u64;
    loop {
        let (page, loc) = match version {
            SegmentVersion::V1 => {
                let mut frame = [0u8; 20];
                if !read_frame(&mut reader, &mut frame)? {
                    break;
                }
                let page = u64::from_le_bytes(frame[0..8].try_into().unwrap());
                let len = u32::from_le_bytes(frame[8..12].try_into().unwrap());
                let crc = u64::from_le_bytes(frame[12..20].try_into().unwrap());
                let loc = RecordLoc {
                    file: file_idx,
                    offset: offset + 20,
                    enc: Encoding::Raw as u8,
                    raw_len: len,
                    stored_len: len,
                    crc,
                };
                offset += 20 + len as u64;
                (page, loc)
            }
            SegmentVersion::V2 => {
                let mut frame = [0u8; FRAME_LEN_V2];
                if !read_frame(&mut reader, &mut frame)? {
                    break;
                }
                let page = u64::from_le_bytes(frame[0..8].try_into().unwrap());
                let raw_len = u32::from_le_bytes(frame[9..13].try_into().unwrap());
                let stored_len = u32::from_le_bytes(frame[13..17].try_into().unwrap());
                let crc = u64::from_le_bytes(frame[17..25].try_into().unwrap());
                let loc = RecordLoc {
                    file: file_idx,
                    offset: offset + FRAME_LEN_V2 as u64,
                    enc: frame[8],
                    raw_len,
                    stored_len,
                    crc,
                };
                offset += (FRAME_LEN_V2 + stored_len as usize) as u64;
                (page, loc)
            }
        };
        reader.seek_relative(loc.stored_len as i64)?;
        pages.push(page);
        by_page.insert(page, loc);
    }
    Ok(file)
}

impl FileBackend {
    /// The cached (building on first use) segment index of a committed
    /// epoch. Fails like `read_epoch` for unknown epochs, and cross-checks
    /// the indexed record count against the manifest's committed count.
    fn epoch_index(&self, epoch: u64) -> io::Result<Arc<EpochIndex>> {
        if let Some(idx) = self.shared.page_index.lock().get(&epoch) {
            return Ok(Arc::clone(idx));
        }
        let rec = self
            .live_records()?
            .into_iter()
            .find(|r| r.epoch == epoch)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("epoch {epoch} not committed (or compacted away)"),
                )
            })?;
        let paths = match rec.kind {
            RecordKind::Full => vec![Self::full_path(&self.dir, epoch)],
            _ => {
                let shards = delta_shard_files(&self.dir, epoch)?;
                if shards.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("epoch {epoch}: segment file missing"),
                    ));
                }
                shards
            }
        };
        let mut files = Vec::with_capacity(paths.len());
        let mut pages = Vec::new();
        let mut by_page = HashMap::new();
        for (i, path) in paths.iter().enumerate() {
            files.push(index_segment(
                path,
                epoch,
                i as u32,
                &mut pages,
                &mut by_page,
            )?);
        }
        if pages.len() as u64 != rec.records {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "epoch {epoch}: manifest committed {} records but segments hold {}",
                    rec.records,
                    pages.len()
                ),
            ));
        }
        let idx = Arc::new(EpochIndex {
            files,
            pages,
            by_page,
        });
        self.shared
            .page_index
            .lock()
            .insert(epoch, Arc::clone(&idx));
        Ok(idx)
    }

    /// The live manifest record of `epoch`, or `NotFound` like `read_epoch`.
    fn live_record(&self, epoch: u64) -> io::Result<ManifestRecord> {
        self.live_records()?
            .into_iter()
            .find(|r| r.epoch == epoch)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("epoch {epoch} not committed (or compacted away)"),
                )
            })
    }

    /// Drop cached segment indexes of epochs that no longer exist.
    fn invalidate_index(&self, epochs: impl IntoIterator<Item = u64>) {
        let mut cache = self.shared.page_index.lock();
        for epoch in epochs {
            cache.remove(&epoch);
        }
    }

    /// Make a directory-entry change (blob rename/unlink, compacted-segment
    /// rename) durable by fsyncing the checkpoint directory itself — the
    /// rename is only crash-safe once its directory entry is on disk.
    fn sync_dir(&self) -> io::Result<()> {
        File::open(&self.dir)?.sync_all()?;
        self.shared.io.dir_fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Hand-write a v1 (`AICKSEG1`) segment plus its manifest record, exactly
/// as the pre-upgrade backend laid them out — test-support helper for the
/// cross-version compatibility suites, kept next to the reader so a format
/// change updates writer and parser together. Not used by any production
/// path (new segments are always v2).
pub fn write_v1_epoch_for_tests(
    dir: &Path,
    epoch: u64,
    pages: &[(u64, Vec<u8>)],
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut seg = Vec::new();
    seg.extend_from_slice(SEGMENT_MAGIC_V1);
    seg.extend_from_slice(&epoch.to_le_bytes());
    let mut payload_bytes = 0u64;
    for (page, data) in pages {
        seg.extend_from_slice(&page.to_le_bytes());
        seg.extend_from_slice(&(data.len() as u32).to_le_bytes());
        seg.extend_from_slice(&crc64(data).to_le_bytes());
        seg.extend_from_slice(data);
        payload_bytes += data.len() as u64;
    }
    fs::write(FileBackend::segment_path(dir, epoch), &seg)?;
    manifest::append(
        &dir.join(MANIFEST_FILE),
        ManifestRecord::delta(epoch, pages.len() as u64, payload_bytes),
    )
}

/// Corrupt a single byte of the first record's *stored* payload inside a
/// finished segment — test helper for integrity verification (exposed so
/// integration tests and failure-injection examples can share it). Parses
/// the segment header, so it works for both v1 and v2 (compressed) layouts;
/// `byte_offset` is taken modulo the stored payload length.
pub fn corrupt_record_payload(dir: &Path, epoch: u64, byte_offset: u64) -> io::Result<()> {
    let path = dir.join(format!("epoch_{epoch:010}.seg"));
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let version = read_segment_header(&mut f, epoch)?;
    let (frame_len, stored_len) = match version {
        SegmentVersion::V1 => {
            let mut frame = [0u8; 20];
            f.read_exact(&mut frame)?;
            let len = u32::from_le_bytes(frame[8..12].try_into().unwrap()) as u64;
            (20u64, len)
        }
        SegmentVersion::V2 => {
            let mut frame = [0u8; 25];
            f.read_exact(&mut frame)?;
            let len = u32::from_le_bytes(frame[13..17].try_into().unwrap()) as u64;
            (25u64, len)
        }
    };
    if stored_len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "first record has an empty payload",
        ));
    }
    let pos = 16 + frame_len + byte_offset % stored_len;
    flip_byte_at(&mut f, pos)
}

/// XOR one byte of `f` at `pos` with `0xFF` (read-modify-write).
fn flip_byte_at(f: &mut File, pos: u64) -> io::Result<()> {
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(pos))?;
    f.read_exact(&mut b)?;
    b[0] ^= 0xFF;
    f.seek(SeekFrom::Start(pos))?;
    f.write_all(&b)?;
    Ok(())
}

/// Which structural region of an epoch's (shard-0 or full) segment file
/// [`corrupt_segment_region`] should damage — one variant per field of the
/// on-disk format, so integrity tests can hit every byte class the
/// scrubber must detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentRegion {
    /// The segment header magic: structural damage, the whole shard
    /// becomes unwalkable (`verify_epoch` reports it in `structural`).
    Header,
    /// The first record's encoding byte (v2 segments only): per-record
    /// damage localized to that page.
    Encoding,
    /// A byte of the first record's *stored* payload (offset taken modulo
    /// the stored length).
    Payload {
        /// Byte offset within the stored payload (modulo its length).
        byte: u64,
    },
    /// A byte of the first record's stored CRC-64 field: the payload is
    /// intact but can no longer prove it.
    Crc,
}

/// Flip one byte of the given `region` of `epoch`'s segment file — at-rest
/// corruption injection for integrity tests (the counterpart the scrubber
/// is built to catch). Targets the delta shard-0 file when present, else
/// the compacted `full_` image.
pub fn corrupt_segment_region(dir: &Path, epoch: u64, region: SegmentRegion) -> io::Result<()> {
    let delta = FileBackend::segment_path(dir, epoch);
    let path = if delta.exists() {
        delta
    } else {
        FileBackend::full_path(dir, epoch)
    };
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    if region == SegmentRegion::Header {
        return flip_byte_at(&mut f, 0);
    }
    let version = read_segment_header(&mut f, epoch)?;
    let pos = match version {
        SegmentVersion::V1 => {
            let mut frame = [0u8; 20];
            f.read_exact(&mut frame)?;
            let stored_len = u32::from_le_bytes(frame[8..12].try_into().unwrap()) as u64;
            match region {
                SegmentRegion::Header => unreachable!(),
                SegmentRegion::Encoding => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "v1 record frames have no encoding byte",
                    ))
                }
                SegmentRegion::Crc => 16 + 12,
                SegmentRegion::Payload { byte } => {
                    if stored_len == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "first record has an empty payload",
                        ));
                    }
                    16 + 20 + byte % stored_len
                }
            }
        }
        SegmentVersion::V2 => {
            let mut frame = [0u8; FRAME_LEN_V2];
            f.read_exact(&mut frame)?;
            let stored_len = u32::from_le_bytes(frame[13..17].try_into().unwrap()) as u64;
            match region {
                SegmentRegion::Header => unreachable!(),
                SegmentRegion::Encoding => 16 + 8,
                SegmentRegion::Crc => 16 + 17,
                SegmentRegion::Payload { byte } => {
                    if stored_len == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "first record has an empty payload",
                        ));
                    }
                    16 + FRAME_LEN_V2 as u64 + byte % stored_len
                }
            }
        }
    };
    flip_byte_at(&mut f, pos)
}

/// Flip one byte of the committed record-count field of `epoch`'s latest
/// manifest record — at-rest damage to the commit log itself rather than
/// to a segment, which `verify_epoch` reports as a structural
/// manifest↔segment disagreement and `repair_epoch` heals by recounting.
/// v2 manifests only (every manifest this backend writes today is v2).
pub fn corrupt_manifest_count(dir: &Path, epoch: u64) -> io::Result<()> {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(dir.join(MANIFEST_FILE))?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != manifest::MANIFEST_MAGIC_V2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "manifest is not version 2",
        ));
    }
    let len = f.metadata()?.len();
    const REC: u64 = 33;
    let mut latest: Option<u64> = None;
    let mut off = 8u64;
    while off + REC <= len {
        let mut rec = [0u8; REC as usize];
        f.read_exact_at(&mut rec, off)?;
        // Wire layout: [0]=kind (2 = retirement), [1..9]=epoch LE,
        // [9..17]=records LE. The latest non-retirement record for the
        // epoch is the one the folded view serves.
        if u64::from_le_bytes(rec[1..9].try_into().unwrap()) == epoch && rec[0] != 2 {
            latest = Some(off);
        }
        off += REC;
    }
    let off = latest.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("no manifest record for epoch {epoch}"),
        )
    })?;
    flip_byte_at(&mut f, off + 9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aickpt-file-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn epoch_round_trip_with_crc() {
        let dir = tmpdir("rt");
        let b = FileBackend::open(&dir).unwrap();
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(42, &[1u8; 128]), (7, &[2u8; 128])])
            .unwrap();
        w.finish().unwrap();

        assert_eq!(b.epochs().unwrap(), vec![1]);
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, 42);
        assert_eq!(seen[0].1, vec![1u8; 128]);
        assert_eq!(seen[1].0, 7);
        assert_eq!(b.bytes_written(), 256);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unfinished_epoch_is_not_visible_after_reopen() {
        let dir = tmpdir("crash");
        {
            let b = FileBackend::open(&dir).unwrap();
            write_epoch(&b, 1, vec![(0, vec![1, 2, 3])]).unwrap();
            let w = b.begin_epoch(2).unwrap();
            w.write_pages(&[(1, &[4, 5, 6])]).unwrap();
            // Simulated crash: never finish epoch 2. (std::mem::forget keeps
            // even the implicit-drop abort from tidying the segment file up,
            // exactly like a killed process.)
            std::mem::forget(w);
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(
            b.epochs().unwrap(),
            vec![1],
            "epoch 2 segment exists but is uncommitted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_removes_segment_and_frees_session() {
        let dir = tmpdir("abort");
        let b = FileBackend::open(&dir).unwrap();
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[1])]).unwrap();
        w.abort().unwrap();
        assert!(b.epochs().unwrap().is_empty());
        assert!(!FileBackend::segment_path(&dir, 1).exists());
        write_epoch(&b, 1, vec![(0, vec![2])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_finish_releases_session() {
        // A finish error (here: the directory vanished under the writer, so
        // the manifest append fails) must not wedge the backend — the next
        // begin_epoch must succeed instead of reporting "still open".
        let dir = tmpdir("ffin");
        let b = FileBackend::open(&dir).unwrap();
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[1])]).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        assert!(w.finish().is_err(), "manifest append cannot succeed");
        fs::create_dir_all(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, vec![2])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_batches_one_epoch() {
        let dir = tmpdir("conc");
        let b = FileBackend::open(&dir).unwrap();
        let w: std::sync::Arc<dyn EpochWriter> = std::sync::Arc::from(b.begin_epoch(1).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    let data = [t as u8; 64];
                    let batch: Vec<(u64, &[u8])> = (0..8).map(|i| (t * 8 + i, &data[..])).collect();
                    w.write_pages(&batch).unwrap();
                });
            }
        });
        w.finish().unwrap();
        let mut pages = Vec::new();
        b.read_epoch(1, &mut |p, d| {
            assert!(d.iter().all(|&x| x as u64 == p / 8), "no torn records");
            pages.push(p);
        })
        .unwrap();
        pages.sort_unstable();
        assert_eq!(pages, (0..32).collect::<Vec<u64>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(3, vec![9u8; 64])]).unwrap();
        corrupt_record_payload(&dir, 1, 10).unwrap();
        let err = b.read_epoch(1, &mut |_, _| {}).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_localizes_per_record_damage() {
        // Each per-record region flip condemns exactly the damaged page;
        // the other record keeps verifying and the walk stays structural-
        // clean. Incompressible payloads keep the stored bytes raw so the
        // flipped byte is guaranteed to land in page 3's record.
        let noise = |seed: u8| -> Vec<u8> { (0..64u32).map(|i| seed ^ (i as u8)).collect() };
        for region in [
            SegmentRegion::Payload { byte: 10 },
            SegmentRegion::Crc,
            SegmentRegion::Encoding,
        ] {
            let dir = tmpdir("verify-local");
            let b = FileBackend::open(&dir).unwrap();
            write_epoch(&b, 1, vec![(3, noise(0x5a)), (4, noise(0xa5))]).unwrap();
            assert!(b.verify_epoch(1).unwrap().is_clean());
            corrupt_segment_region(&dir, 1, region).unwrap();
            let report = b.verify_epoch(1).unwrap();
            assert_eq!(report.corrupt_pages, vec![3], "{region:?}");
            assert!(report.structural.is_empty(), "{region:?}");
            assert_eq!(report.records, 2, "both records walked ({region:?})");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn verify_reports_structural_damage_for_header_flips() {
        let dir = tmpdir("verify-hdr");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, vec![7u8; 32])]).unwrap();
        corrupt_segment_region(&dir, 1, SegmentRegion::Header).unwrap();
        let report = b.verify_epoch(1).unwrap();
        assert!(!report.structural.is_empty(), "bad magic is structural");
        assert!(report.corrupt_pages.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_count_damage_self_heals_by_recount() {
        let dir = tmpdir("recount");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, vec![1u8; 16]), (1, vec![2u8; 16])]).unwrap();
        corrupt_manifest_count(&dir, 1).unwrap();
        let report = b.verify_epoch(1).unwrap();
        assert!(report.corrupt_pages.is_empty());
        assert_eq!(report.structural.len(), 1, "count disagreement only");
        assert_eq!(
            b.read_epoch(1, &mut |_, _| {}).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let repair = b.repair_epoch(1).unwrap();
        assert_eq!(repair.source, "manifest recount");
        assert!(b.verify_epoch(1).unwrap().is_clean());
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d[0]))).unwrap();
        assert_eq!(seen, vec![(0, 1), (1, 2)], "reads recover");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn payload_damage_has_no_lone_backend_repair() {
        let dir = tmpdir("norepair");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, (0..64u8).collect())]).unwrap();
        corrupt_record_payload(&dir, 1, 3).unwrap();
        assert_eq!(
            b.repair_epoch(1).unwrap_err().kind(),
            io::ErrorKind::Unsupported,
            "payload rot needs a redundant source"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_epoch_replaces_a_damaged_segment_in_place() {
        let dir = tmpdir("rewrite");
        let b = FileBackend::open(&dir).unwrap();
        let pages: Vec<(u64, Vec<u8>)> = vec![(0, (0..64u8).collect()), (9, (64..128u8).collect())];
        write_epoch(&b, 1, pages.clone()).unwrap();
        write_epoch(&b, 2, vec![(0, vec![9u8; 8])]).unwrap();
        corrupt_segment_region(&dir, 1, SegmentRegion::Header).unwrap();
        assert!(b.read_epoch(1, &mut |_, _| {}).is_err());
        b.rewrite_epoch(1, &pages).unwrap();
        assert!(b.verify_epoch(1).unwrap().is_clean());
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, pages, "byte-identical to the original epoch");
        // The chain shape is untouched: still two deltas, and the
        // corrective record survives reopen.
        assert_eq!(b.epochs().unwrap(), vec![1, 2]);
        drop(b);
        let b = FileBackend::open(&dir).unwrap();
        assert!(b.verify_epoch(1).unwrap().is_clean());
        assert_eq!(b.epochs().unwrap(), vec![1, 2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_preserves_full_kind_for_compacted_epochs() {
        let dir = tmpdir("rewrite-full");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, vec![1u8; 16])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2u8; 16])]).unwrap();
        b.compact(2).unwrap();
        corrupt_segment_region(&dir, 2, SegmentRegion::Payload { byte: 0 }).unwrap();
        assert!(!b.verify_epoch(2).unwrap().is_clean());
        b.rewrite_epoch(2, &[(0, vec![1u8; 16]), (1, vec![2u8; 16])])
            .unwrap();
        assert!(b.verify_epoch(2).unwrap().is_clean());
        assert_eq!(
            b.chain().unwrap(),
            vec![ChainEntry {
                epoch: 2,
                kind: EpochKind::Full
            }],
            "rewrite keeps the full-image kind, unlike install_compacted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_meta_reports_frame_metadata() {
        let dir = tmpdir("meta");
        let b = FileBackend::open(&dir).unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        write_epoch(&b, 1, vec![(5, data.clone())]).unwrap();
        let meta = b.record_meta(1, 5).unwrap().unwrap();
        assert_eq!(meta.raw_len, 100);
        assert_eq!(meta.crc, crc64(&data));
        assert_eq!(b.record_meta(1, 6).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_sweeps_uncommitted_segments_and_tmp_files() {
        let dir = tmpdir("sweep");
        {
            let b = FileBackend::open(&dir).unwrap();
            write_epoch(&b, 1, vec![(0, vec![1, 2, 3])]).unwrap();
            let w = b.begin_epoch(2).unwrap();
            w.write_pages(&[(1, &[4, 5, 6])]).unwrap();
            // Killed process: neither finish nor the implicit-drop abort.
            std::mem::forget(w);
            // Crash mid-blob-write and mid-compaction leave temp files too.
            fs::write(dir.join("blob_layout.tmp"), b"half").unwrap();
            fs::write(dir.join("full_0000000009.seg.tmp"), b"half").unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
        assert!(
            !FileBackend::segment_path(&dir, 2).exists(),
            "uncommitted segment swept at reopen"
        );
        assert!(!dir.join("blob_layout.tmp").exists(), "tmp blob swept");
        assert!(
            !dir.join("full_0000000009.seg.tmp").exists(),
            "tmp compaction image swept"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_folds_chain_into_full_segment() {
        let dir = tmpdir("compact");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, vec![1; 16]), (1, vec![1; 16])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2; 16]), (2, vec![2; 16])]).unwrap();
        write_epoch(&b, 3, vec![(0, vec![3; 16])]).unwrap();
        let stats = b.compact(3).unwrap();
        assert_eq!((stats.from, stats.into), (1, 3));
        assert_eq!(stats.segments_removed, 3);
        assert_eq!(stats.bytes_before, 5 * 16);
        assert_eq!(stats.bytes_after, 3 * 16, "one version per page remains");
        // The chain is now a single full segment; deltas are gone from disk.
        assert_eq!(b.epochs().unwrap(), vec![3]);
        assert_eq!(
            b.chain().unwrap(),
            vec![ChainEntry {
                epoch: 3,
                kind: EpochKind::Full
            }]
        );
        for e in 1..=3 {
            assert!(!FileBackend::segment_path(&dir, e).exists(), "epoch {e}");
        }
        assert!(FileBackend::full_path(&dir, 3).exists());
        let mut seen = Vec::new();
        b.read_epoch(3, &mut |p, d| seen.push((p, d[0]))).unwrap();
        assert_eq!(seen, vec![(0, 3), (1, 2), (2, 2)], "latest-wins image");
        // Epochs after the compaction stack on top as deltas.
        write_epoch(&b, 4, vec![(5, vec![4])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![3, 4]);
        // Restore below the horizon fails cleanly.
        assert_eq!(
            b.read_epoch(2, &mut |_, _| {}).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        // Compacting a lone full epoch is a no-op.
        let again = b.compact(3).unwrap();
        assert_eq!(again.segments_removed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_chain_survives_reopen() {
        let dir = tmpdir("compact-reopen");
        {
            let b = FileBackend::open(&dir).unwrap();
            write_epoch(&b, 1, vec![(0, vec![1])]).unwrap();
            write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
            b.compact(2).unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![2]);
        let mut seen = Vec::new();
        b.read_epoch(2, &mut |p, d| seen.push((p, d[0]))).unwrap();
        assert_eq!(seen, vec![(0, 1), (1, 2)]);
        // Epoch numbers continue above the compaction point after reopen.
        assert!(b.begin_epoch(2).is_err());
        write_epoch(&b, 3, vec![(0, vec![3])]).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_epoch_retires_and_is_durable() {
        let dir = tmpdir("retire");
        {
            let b = FileBackend::open(&dir).unwrap();
            write_epoch(&b, 1, vec![(0, vec![1])]).unwrap();
            write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
            b.remove_epoch(1).unwrap();
            assert_eq!(b.epochs().unwrap(), vec![2]);
            assert!(!FileBackend::segment_path(&dir, 1).exists());
            assert!(b.remove_epoch(1).is_err(), "already retired");
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![2], "retirement survived reopen");
        assert!(b.begin_epoch(1).is_err(), "retired numbers are not reused");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blobs_survive_reopen() {
        let dir = tmpdir("blob");
        {
            let b = FileBackend::open(&dir).unwrap();
            b.put_blob("layout", b"hello").unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.get_blob("layout").unwrap().unwrap(), b"hello");
        assert_eq!(b.get_blob("missing").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_numbers_must_increase_across_reopen() {
        let dir = tmpdir("inc");
        {
            let b = FileBackend::open(&dir).unwrap();
            b.begin_epoch(3).unwrap().finish().unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert!(b.begin_epoch(3).is_err());
        assert!(b.begin_epoch(2).is_err());
        b.begin_epoch(4).unwrap().finish().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lone_stream_stays_in_legacy_single_file_layout() {
        let dir = tmpdir("shard0");
        let b = FileBackend::open(&dir).unwrap();
        let w = b.begin_epoch(1).unwrap();
        for i in 0..16u64 {
            w.write_pages(&[(i, &[i as u8; 64])]).unwrap();
        }
        w.finish().unwrap();
        assert!(FileBackend::segment_path(&dir, 1).exists());
        assert!(
            !shard_path(&dir, 1, 1).exists(),
            "no contention, no extra shards"
        );
        // Single-stream write order is preserved, as before.
        let mut pages = Vec::new();
        b.read_epoch(1, &mut |p, _| pages.push(p)).unwrap();
        assert_eq!(pages, (0..16).collect::<Vec<u64>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn contended_writer_spills_to_shard_files() {
        let dir = tmpdir("spill");
        let b = FileBackend::open(&dir).unwrap();
        let w = b.begin_epoch_impl(1).unwrap();
        {
            // Hold shard slot 0 (as a concurrent stream would) and write:
            // the batch must claim shard 1 instead of blocking.
            let _slot0 = w.shards[0].lock();
            w.write_pages(&[(0, &[7u8; 32])]).unwrap();
            assert!(shard_path(&dir, 1, 1).exists(), "spilled to shard 1");
        }
        // Slot 0 free again: next batch lands there.
        w.write_pages(&[(1, &[9u8; 32])]).unwrap();
        w.finish().unwrap();
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d[0]))).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 7), (1, 9)], "both shards restored");
        // Retirement removes every shard file of the epoch.
        b.remove_epoch(1).unwrap();
        assert!(!FileBackend::segment_path(&dir, 1).exists());
        assert!(!shard_path(&dir, 1, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_epoch_commits_and_reads_back_empty() {
        let dir = tmpdir("empty");
        let b = FileBackend::open(&dir).unwrap();
        b.begin_epoch(1).unwrap().finish().unwrap();
        let mut n = 0;
        b.read_epoch(1, &mut |_, _| n += 1).unwrap();
        assert_eq!(n, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_pays_one_fsync_per_epoch_and_stream() {
        let dir = tmpdir("iostats");
        let b = FileBackend::open(&dir)
            .unwrap()
            .with_compression(Compression::None);
        let w = b.begin_epoch(1).unwrap();
        for i in 0..10u64 {
            w.write_pages(&[(i, &[i as u8; 256])]).unwrap();
        }
        w.finish().unwrap();
        let s = b.io_stats();
        assert_eq!(s.segment_fsyncs, 1, "10 batches, one coalesced fsync");
        assert_eq!((s.manifest_appends, s.manifest_fsyncs), (1, 1));
        assert!(s.vectored_writes >= 10, "one pwritev per batch at least");
        assert!(
            s.write_syscall_bytes >= 10 * 256,
            "payload flowed through vectored writes"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_epochs_batches_manifest_fsyncs() {
        let dir = tmpdir("batchrm");
        let b = FileBackend::open(&dir).unwrap();
        for e in 1..=3u64 {
            write_epoch(&b, e, vec![(e, vec![e as u8; 16])]).unwrap();
        }
        let before = b.io_stats();
        b.remove_epochs(&[1, 2]).unwrap();
        let after = b.io_stats();
        assert_eq!(
            after.manifest_appends - before.manifest_appends,
            2,
            "two retirement records"
        );
        assert_eq!(
            after.manifest_fsyncs - before.manifest_fsyncs,
            1,
            "one fsync for the batch"
        );
        assert!(after.coalesced_appends() > before.coalesced_appends());
        assert_eq!(b.epochs().unwrap(), vec![3]);
        // Retired numbers stay burned after the batched append too.
        assert!(b.begin_epoch(2).is_err());
        // A batch naming a non-live epoch fails before any file is lost.
        assert!(b.remove_epochs(&[3, 99]).is_err());
        assert_eq!(b.epochs().unwrap(), vec![3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn high_water_is_served_from_cache_and_survives_reopen() {
        let dir = tmpdir("hw");
        {
            let b = FileBackend::open(&dir).unwrap();
            assert_eq!(b.high_water().unwrap(), None);
            write_epoch(&b, 5, vec![(0, vec![1])]).unwrap();
            assert_eq!(b.high_water().unwrap(), Some(5));
            b.remove_epoch(5).unwrap();
            assert_eq!(b.high_water().unwrap(), Some(5), "retired number burned");
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.high_water().unwrap(), Some(5), "cache reseeded at open");
        assert!(b.begin_epoch(5).is_err());
        write_epoch(&b, 6, vec![(0, vec![2])]).unwrap();
        assert_eq!(b.high_water().unwrap(), Some(6));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_page_at_matches_streamed_read() {
        let dir = tmpdir("pageat");
        // Auto compression: the index must round-trip encoded records too.
        let b = FileBackend::open(&dir).unwrap();
        let compressible = vec![7u8; 4096];
        let mut incompressible = vec![0u8; 4096];
        for (i, x) in incompressible.iter_mut().enumerate() {
            *x = (i as u8).wrapping_mul(31).wrapping_add((i >> 8) as u8);
        }
        write_epoch(
            &b,
            1,
            vec![
                (3, compressible.clone()),
                (9, incompressible.clone()),
                (4, vec![]),
            ],
        )
        .unwrap();
        assert_eq!(b.read_page_at(1, 3).unwrap().unwrap(), compressible);
        assert_eq!(b.read_page_at(1, 9).unwrap().unwrap(), incompressible);
        assert_eq!(b.read_page_at(1, 4).unwrap().unwrap(), Vec::<u8>::new());
        assert_eq!(b.read_page_at(1, 77).unwrap(), None, "absent page");
        assert!(b.read_page_at(9, 3).is_err(), "unknown epoch");
        assert_eq!(b.epoch_page_ids(1).unwrap(), vec![3, 9, 4]);
        assert!(b.io_stats().page_reads >= 3);
        // Corruption surfaces on the random-access path too.
        let b2 = FileBackend::open(&dir).unwrap();
        corrupt_record_payload(&dir, 1, 1).unwrap();
        let err = b2.read_page_at(1, 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_page_at_survives_compaction_and_sharded_epochs() {
        let dir = tmpdir("pageat2");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, vec![1; 32]), (1, vec![1; 32])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2; 32])]).unwrap();
        // Prime the index cache, then compact underneath it.
        assert_eq!(b.read_page_at(2, 1).unwrap().unwrap(), vec![2; 32]);
        b.compact(2).unwrap();
        assert_eq!(
            b.read_page_at(2, 0).unwrap().unwrap(),
            vec![1; 32],
            "full segment indexed after invalidation"
        );
        assert_eq!(b.read_page_at(2, 1).unwrap().unwrap(), vec![2; 32]);
        // Sharded epoch: records spread across shard files are all indexed.
        let w = b.begin_epoch_impl(3).unwrap();
        {
            let _slot0 = w.shards[0].lock();
            w.write_pages(&[(5, &[5u8; 32])]).unwrap();
        }
        w.write_pages(&[(6, &[6u8; 32])]).unwrap();
        w.finish().unwrap();
        assert_eq!(b.read_page_at(3, 5).unwrap().unwrap(), vec![5; 32]);
        assert_eq!(b.read_page_at(3, 6).unwrap().unwrap(), vec![6; 32]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_delete_list_and_orphan_sweep() {
        let dir = tmpdir("bloblife");
        {
            let b = FileBackend::open(&dir).unwrap();
            write_epoch(&b, 1, vec![(0, vec![1])]).unwrap();
            b.put_blob(&crate::backend::layout_blob_name(1), b"live")
                .unwrap();
            b.put_blob(&crate::backend::layout_blob_name(7), b"orphan")
                .unwrap();
            b.put_blob("custom-name", b"keep").unwrap();
            assert_eq!(
                b.list_blobs().unwrap(),
                vec![
                    "custom-name".to_owned(),
                    "layout_0000000001".to_owned(),
                    "layout_0000000007".to_owned()
                ]
            );
            b.delete_blob("custom-name").unwrap();
            b.delete_blob("custom-name").unwrap(); // idempotent
            assert!(b.io_stats().dir_fsyncs > 0, "renames/unlinks fsync the dir");
        }
        // Reopen: epoch 7 was never committed, so its blob is swept; the
        // live epoch's blob survives.
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(
            b.list_blobs().unwrap(),
            vec!["layout_0000000001".to_owned()]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retirement_and_compaction_remove_layout_blobs() {
        let dir = tmpdir("blobgc");
        let b = FileBackend::open(&dir).unwrap();
        for e in 1..=4u64 {
            write_epoch(&b, e, vec![(e, vec![e as u8; 16])]).unwrap();
            b.put_blob(&crate::backend::layout_blob_name(e), &[e as u8])
                .unwrap();
        }
        b.remove_epoch(1).unwrap();
        assert_eq!(
            b.list_blobs().unwrap(),
            (2..=4)
                .map(crate::backend::layout_blob_name)
                .collect::<Vec<_>>(),
            "retired epoch's blob removed"
        );
        b.compact(3).unwrap();
        assert_eq!(
            b.list_blobs().unwrap(),
            (3..=4)
                .map(crate::backend::layout_blob_name)
                .collect::<Vec<_>>(),
            "blobs below the horizon gone, the horizon's blob kept"
        );
        assert_eq!(
            b.get_blob(&crate::backend::layout_blob_name(3))
                .unwrap()
                .unwrap(),
            vec![3u8]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn variable_record_sizes() {
        let dir = tmpdir("var");
        let b = FileBackend::open(&dir).unwrap();
        write_epoch(&b, 1, vec![(0, vec![]), (1, vec![1]), (2, vec![2u8; 9000])]).unwrap();
        let mut sizes = Vec::new();
        b.read_epoch(1, &mut |_, d| sizes.push(d.len())).unwrap();
        assert_eq!(sizes, vec![0, 1, 9000]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
