//! # ai-ckpt-storage — checkpoint storage substrate
//!
//! Pluggable stable-storage backends for AI-Ckpt (§3.2 of the paper: the
//! page manager "is designed in a modular fashion such that it is easy to
//! plug in different storage backends"), plus the incremental-restore logic
//! that turns a chain of epochs back into a memory image.
//!
//! * [`backend`] — the `StorageBackend` trait (epoch-structured page sink +
//!   source with named metadata blobs);
//! * [`file`](mod@file) — POSIX file-system backend: per-epoch segment files with
//!   CRC-64-protected records and an append-only commit manifest (covers
//!   both local disks and PVFS-style parallel file systems, which mount as
//!   directories);
//! * [`memory`] — in-RAM reference backend for tests and experiments;
//! * [`throttle`] — bandwidth/latency emulation (the paper's 55 MB/s SATA
//!   disks, on modern hardware);
//! * [`failing`] — failure injection for error-path testing;
//! * [`replicate`] — n-way replication across backends (the paper's
//!   straightforward remedy for unreliable local storage);
//! * [`parity`] — XOR single-erasure coding (the cheaper remedy the paper
//!   cites from its prior work);
//! * [`tiered`] — fast-tier + slow-tier pipeline with a background drain
//!   queue (the VELOC-style multi-level checkpoint path);
//! * [`policy`] — declarative multi-level resilience policies
//!   (`ResilienceSpec`): local → partner-replica → parity levels with
//!   async drain, background rebuild and graceful degraded reads;
//! * [`io`] — the vectored zero-copy write engine: a partial-write-safe
//!   `pwritev` wrapper, reusable aligned staging buffers and syscall-level
//!   I/O counters surfaced as [`IoStats`];
//! * [`manifest`] / [`checksum`] — the commit log and integrity primitives;
//! * [`codec`] — per-record payload encodings (raw / RLE / vendored LZ)
//!   for `AICKSEG2` segments, CRC-verified over the uncompressed bytes;
//! * [`image`] — latest-wins reconstruction for restart, starting from the
//!   newest full (compacted) segment;
//! * [`locator`] — page→epoch resolution without payload I/O, the index
//!   behind demand-paged (lazy) restore;
//! * [`cache`] — shared sharded LRU page cache with single-flight loading,
//!   so N concurrent restores of one checkpoint hit disk once per page;
//! * [`scrub`] — at-rest integrity scrubbing: incremental verification,
//!   self-healing repair from the best surviving redundant source, and
//!   quarantine of irreparable epochs;
//! * [`errors`] — the Transient/Permanent/Corrupt fault taxonomy and the
//!   deterministic-jitter [`RetryPolicy`];
//! * [`namespace`] — `label_NNNN/` sub-root naming shared by the group
//!   coordinator's per-rank directories and the multi-tenant service's
//!   per-tenant directories.
//!
//! The chain lifecycle — full → deltas → compaction → GC — is defined in
//! [`backend`]: `compact(up_to)` folds the live prefix into one full
//! segment so restore cost and segment count stay bounded no matter how
//! many checkpoints were ever taken.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod cache;
pub mod checksum;
pub mod codec;
pub mod errors;
pub mod failing;
pub mod file;
pub mod image;
pub mod io;
pub mod locator;
pub mod manifest;
pub mod memory;
pub mod namespace;
pub mod null;
pub mod parity;
pub mod policy;
pub mod replicate;
pub mod scrub;
pub mod throttle;
pub mod tiered;

pub use backend::{
    layout_blob_name, write_epoch, ChainEntry, CompactionStats, EpochKind, EpochWriter,
    StorageBackend,
};
pub use cache::{CacheStats, PageCache};
pub use checksum::{crc64, crc64_update};
pub use codec::{Compression, Encoding};
pub use errors::{classify, FaultClass, RetryPolicy};
pub use failing::{FailingBackend, FailureControl, FaultOp};
pub use file::{corrupt_manifest_count, corrupt_segment_region, FileBackend, SegmentRegion};
pub use image::CheckpointImage;
pub use io::{IoCounters, IoStats};
pub use locator::PageLocator;
pub use manifest::{ManifestRecord, RecordKind};
pub use memory::{MemoryBackend, MemoryRoot};
pub use null::NullBackend;
pub use parity::ParityBackend;
pub use policy::{
    LevelProtection, LevelSpec, LevelStats, PolicyBackend, PolicyBuilder, PolicyStats,
    ResilienceSpec,
};
pub use replicate::ReplicatedBackend;
pub use scrub::{
    quarantined_error, IntegrityStats, RecordMeta, RepairReport, ScrubPolicy, Scrubber,
    VerifyReport,
};
pub use throttle::ThrottledBackend;
pub use tiered::TieredBackend;
