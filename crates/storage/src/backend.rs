//! The storage backend abstraction (§3.2: "The page manager is designed in a
//! modular fashion such that it is easy to plug in different storage
//! backends where the dirty pages can be committed").
//!
//! A backend persists *epochs*: for each checkpoint, a set of
//! `(page id, page bytes)` records, finished atomically. Restore walks
//! epochs oldest-to-newest and applies records latest-wins (incremental
//! checkpointing semantics).
//!
//! ## The multi-stream write contract
//!
//! Committing an epoch goes through a per-epoch [`EpochWriter`] session so
//! that several committer streams can feed one epoch concurrently:
//!
//! * [`StorageBackend::begin_epoch`] opens the session (at most one may be
//!   open per backend; epoch numbers must be strictly increasing);
//! * [`EpochWriter::write_pages`] appends a *batch* of page records and may
//!   be called from any number of threads concurrently — implementations
//!   serialise internally as needed;
//! * [`EpochWriter::finish`] is the single atomic commit barrier: it is
//!   called exactly once, after every `write_pages` call has returned, and
//!   must make the epoch durable before returning (the paper's
//!   "successfully committed to stable storage");
//! * [`EpochWriter::abort`] discards the session on the error path — the
//!   epoch must never become visible to `epochs`/`read_epoch`. Dropping a
//!   writer without finishing aborts implicitly.
//!
//! Record order *within* an epoch is unspecified when multiple streams
//! write concurrently. That is sound because the engine commits each page
//! at most once per checkpoint, so latest-wins reconstruction never depends
//! on intra-epoch order. Single-stream writers (tests, `write_epoch`)
//! still observe their own write order on `read_epoch`.
//!
//! ## The chain lifecycle (compaction + tiering)
//!
//! An incremental chain grows one delta segment per checkpoint, so restore
//! cost and segment count grow without bound. Two trait operations bound
//! them:
//!
//! * [`StorageBackend::compact`] folds the live chain prefix `..= up_to`
//!   into a single **full** segment stored under epoch `up_to` (latest-wins
//!   merge) and garbage-collects the superseded segments. Restore then
//!   replays from the newest full segment instead of epoch 0. Restore
//!   points *below* the compaction horizon are intentionally given up —
//!   that is the trade that bounds the chain.
//! * [`StorageBackend::drain_one`] moves the oldest epoch of a fast tier
//!   toward a slower durable tier (see `TieredBackend`); it is a no-op for
//!   single-tier backends.
//!
//! The default `compact` materialises the merged image in memory and hands
//! it to [`StorageBackend::install_compacted`] — the one primitive a
//! backend must implement (atomically: after a crash either the old chain
//! or the new full segment is visible, never neither) to opt into
//! compaction.

use std::collections::BTreeMap;
use std::io;

use crate::errors::{classify, FaultClass};
use crate::io::IoStats;
use crate::scrub::{RecordMeta, RepairReport, VerifyReport};

/// One open epoch-commit session. See the module docs for the contract.
pub trait EpochWriter: Send + Sync {
    /// Append a batch of page records. Thread-safe: committer streams call
    /// this concurrently on the same session.
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()>;

    /// Durably complete the epoch (the atomic commit barrier). Must be
    /// called at most once, after all `write_pages` calls have returned.
    fn finish(&self) -> io::Result<()>;

    /// Discard the epoch (committer error path): it must never become
    /// visible to `epochs`/`read_epoch`.
    fn abort(&self) -> io::Result<()>;
}

/// How a live epoch's segment relates to the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// Full image: restore may start here, ignoring everything earlier.
    Full,
    /// Incremental delta over the preceding live epoch.
    Delta,
}

/// One live epoch of a backend's chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainEntry {
    /// Epoch number.
    pub epoch: u64,
    /// Full or delta segment.
    pub kind: EpochKind,
}

/// Outcome of one [`StorageBackend::compact`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Oldest epoch folded.
    pub from: u64,
    /// Epoch now holding the full segment.
    pub into: u64,
    /// Superseded segments removed (0 when the call was a no-op).
    pub segments_removed: u64,
    /// Payload bytes of the superseded segments.
    pub bytes_before: u64,
    /// Payload bytes of the new full segment (≤ `bytes_before`: the
    /// latest-wins merge keeps at most one version per page).
    pub bytes_after: u64,
}

impl CompactionStats {
    /// Payload bytes the compaction freed.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_after)
    }
}

/// A sink + source of checkpoint epochs. `Send + Sync`: the runtime shares
/// one backend between the checkpoint requester, N committer streams and
/// restore.
pub trait StorageBackend: Send + Sync {
    /// Open the commit session for a new epoch. Epoch numbers must be
    /// strictly increasing; at most one epoch may be open at a time.
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>>;

    /// Store a named metadata blob (e.g. the runtime's region layout),
    /// overwriting any previous value. Durable once written.
    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Retrieve a named metadata blob.
    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// All *finished* epochs, ascending.
    fn epochs(&self) -> io::Result<Vec<u64>>;

    /// The highest epoch number this backend has ever *accounted for* —
    /// committed, compacted away or retired. New epochs must exceed it.
    /// The default derives it from [`StorageBackend::epochs`], which is
    /// only correct for backends that never burn numbers; backends with a
    /// retirement history (manifest, high-water mark) override it so a
    /// fresh process resumes numbering above retired epochs instead of
    /// colliding with them. `None` means the backend is untouched.
    fn high_water(&self) -> io::Result<Option<u64>> {
        Ok(self.epochs()?.last().copied())
    }

    /// Stream the records of a finished epoch, verifying integrity.
    /// `visit(page, bytes)` is called per record.
    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()>;

    /// Page ids recorded in a finished epoch, in record (arrival) order,
    /// *without* materialising payloads. The demand-paged restore path uses
    /// this to build its locator and to derive the prefetch order. The
    /// default streams the epoch and discards payloads; backends with a
    /// segment index override it to walk frames only.
    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        let mut pages = Vec::new();
        self.read_epoch(epoch, &mut |p, _| pages.push(p))?;
        Ok(pages)
    }

    /// Random-access read of one page's payload from a finished epoch
    /// (decoded, integrity-checked), or `None` when the epoch holds no
    /// record for `page`. When an epoch somehow carries duplicate records
    /// for a page the latest one wins, matching `read_epoch` replay
    /// semantics. The default streams the whole epoch; backends with a
    /// segment index override it to seek straight to the record.
    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        let mut hit: Option<Vec<u8>> = None;
        self.read_epoch(epoch, &mut |p, d| {
            if p == page {
                hit = Some(d.to_vec());
            }
        })?;
        Ok(hit)
    }

    /// Delete a named metadata blob. Deleting a blob that does not exist is
    /// not an error (retirement paths race benignly with sweeps). The
    /// default is a no-op for backends that never persist blobs.
    fn delete_blob(&self, name: &str) -> io::Result<()> {
        let _ = name;
        Ok(())
    }

    /// Names of all stored metadata blobs, ascending. Used by the open-time
    /// orphan sweep and by retirement tests. Backends that never persist
    /// blobs report none.
    fn list_blobs(&self) -> io::Result<Vec<String>> {
        Ok(Vec::new())
    }

    /// Total payload bytes written since creation (diagnostics; excludes
    /// framing overhead). Implementations keep this in atomics so the count
    /// stays exact under concurrent streams.
    fn bytes_written(&self) -> u64;

    /// Physical payload bytes stored after per-record encoding
    /// (diagnostics). Backends without a compression stage report
    /// [`StorageBackend::bytes_written`]; wrappers forward to their inner
    /// backend. `bytes_stored <= bytes_written` whenever compression is
    /// active (the encoder never grows a record).
    fn bytes_stored(&self) -> u64 {
        self.bytes_written()
    }

    /// The live chain with per-epoch kinds, ascending. The default derives
    /// it from [`StorageBackend::epochs`]: all deltas (pre-compaction
    /// semantics — restore replays everything).
    fn chain(&self) -> io::Result<Vec<ChainEntry>> {
        Ok(self
            .epochs()?
            .into_iter()
            .map(|epoch| ChainEntry {
                epoch,
                kind: EpochKind::Delta,
            })
            .collect())
    }

    /// Fold the live chain prefix `..= up_to` into one full segment stored
    /// under epoch `up_to`, superseding (and reclaiming) every earlier live
    /// epoch. Restore to epochs below `up_to` becomes impossible; restore
    /// to `up_to` and beyond is byte-identical to the uncompacted chain.
    ///
    /// The default is the latest-wins merge over `read_epoch`, installed
    /// through [`StorageBackend::install_compacted`]; backends only
    /// override it to stream instead of buffering. Safe to call while a
    /// *later* epoch session is open — the open epoch is not part of the
    /// committed chain yet.
    fn compact(&self, up_to: u64) -> io::Result<CompactionStats> {
        // Probe capability *before* materialising the merge: without this,
        // an unsupported backend would buffer the entire chain in memory on
        // every call only to fail at the final install.
        if !self.supports_compaction() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "backend does not support compaction",
            ));
        }
        match merge_live_prefix(self, up_to)? {
            MergeOutcome::AlreadyCompact => Ok(CompactionStats {
                from: up_to,
                into: up_to,
                ..CompactionStats::default()
            }),
            MergeOutcome::Merged {
                from,
                segments,
                bytes_before,
                records,
            } => {
                let bytes_after: u64 = records.iter().map(|(_, d)| d.len() as u64).sum();
                self.install_compacted(from, up_to, &records)?;
                Ok(CompactionStats {
                    from,
                    into: up_to,
                    segments_removed: segments,
                    bytes_before,
                    bytes_after,
                })
            }
        }
    }

    /// Whether this backend can fold its chain (cheap capability probe the
    /// default [`StorageBackend::compact`] checks before doing any work,
    /// and policy-driven callers check before scheduling folds at all).
    /// Override to `true` together with
    /// [`StorageBackend::install_compacted`]; wrappers forward to their
    /// inner backend.
    fn supports_compaction(&self) -> bool {
        false
    }

    /// Compaction primitive behind the default [`StorageBackend::compact`]:
    /// atomically replace the live epochs `from ..= into` with one full
    /// segment at `into` containing `records`, then reclaim the superseded
    /// segments. Unsupported by default — implementing this (plus
    /// [`StorageBackend::supports_compaction`]) opts a backend into the
    /// default latest-wins compaction.
    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        let _ = (from, into, records);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "backend does not support compaction",
        ))
    }

    /// Retire a committed epoch from this backend (tier eviction). The
    /// caller must guarantee the epoch is durable elsewhere — dropping a
    /// delta from the middle of a single-tier chain corrupts restore.
    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("backend cannot retire epoch {epoch}"),
        ))
    }

    /// Retire a batch of committed epochs. The default loops over
    /// [`StorageBackend::remove_epoch`]; backends with a commit log
    /// override it to append all retirement records under **one** log
    /// fsync (coordinated-group recovery and maintenance drains retire
    /// many epochs at once). The batch is not atomic across backends: on
    /// error, a prefix of `epochs` may already be retired.
    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        for &epoch in epochs {
            self.remove_epoch(epoch)?;
        }
        Ok(())
    }

    /// Move the oldest not-yet-drained epoch one tier outward (see
    /// `TieredBackend`), returning it, or `None` when there is no backlog.
    /// Single-tier backends have no backlog.
    fn drain_one(&self) -> io::Result<Option<u64>> {
        Ok(None)
    }

    /// Epochs currently waiting in the drain backlog (committed to a fast
    /// tier but not yet evicted to the durable one). Always 0 for
    /// single-tier backends; a drain scheduler reads this to seed and
    /// balance its arbitration. Best-effort: the value may be stale by the
    /// time the caller acts on it.
    fn drain_backlog(&self) -> usize {
        0
    }

    /// Syscall-level I/O accounting (vectored writes, fsyncs, manifest
    /// append coalescing). Zero by default for backends without a syscall
    /// path (memory, null); wrappers sum their children.
    fn io_stats(&self) -> IoStats {
        IoStats::default()
    }

    /// Validate every stored record of a finished epoch — per-record CRCs,
    /// decodability, manifest↔segment agreement — *without* materialising
    /// a restore, and report the damage instead of erroring on the first
    /// bad byte. Corruption is a **finding**, not a failure: only
    /// transport-level errors (epoch missing, tier unreachable) return
    /// `Err`.
    ///
    /// The default streams [`StorageBackend::read_epoch`]; when that trips
    /// an integrity error it falls back to per-page random reads to
    /// localise which records are damaged. Backends with a frame index
    /// override this to walk frames directly and to keep going past
    /// damage the streaming path cannot step over.
    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::new(epoch);
        let stream = self.read_epoch(epoch, &mut |_, d| {
            report.records += 1;
            report.bytes += d.len() as u64;
        });
        let err = match stream {
            Ok(()) => return Ok(report),
            Err(e) if classify(&e) == FaultClass::Corrupt => e,
            Err(e) => return Err(e),
        };
        // The stream died on damage: localise it page by page. Counts are
        // rebuilt from scratch — the partial stream tally double-counts
        // nothing that way.
        report.records = 0;
        report.bytes = 0;
        let ids = match self.epoch_page_ids(epoch) {
            Ok(ids) => ids,
            Err(_) => {
                // Not even the frame walk survives: structural damage.
                report.structural.push(err.to_string());
                return Ok(report);
            }
        };
        let mut seen = std::collections::BTreeSet::new();
        for id in ids {
            if !seen.insert(id) {
                continue;
            }
            match self.read_page_at(epoch, id) {
                Ok(Some(d)) => {
                    report.records += 1;
                    report.bytes += d.len() as u64;
                }
                Ok(None) => {}
                Err(e) if classify(&e) == FaultClass::Corrupt => report.note_corrupt(id),
                Err(e) => return Err(e),
            }
        }
        if report.is_clean() {
            // Every record reads fine individually, yet the stream failed:
            // the damage is structural (e.g. the manifest's record count
            // disagrees with the segments).
            report.structural.push(err.to_string());
        }
        Ok(report)
    }

    /// Atomically replace a finished epoch's stored records with
    /// `records`, preserving the epoch's chain kind (unlike
    /// [`StorageBackend::install_compacted`], which folds to a full
    /// segment). This is the rewrite primitive repair paths install
    /// healed bytes through; it must work even when the existing segment
    /// is unreadable. Unsupported by default.
    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        let _ = (epoch, records);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("backend cannot rewrite epoch {epoch}"),
        ))
    }

    /// Repair a damaged epoch from the best surviving redundant source
    /// (replica member, parity reconstruction, another policy level),
    /// rewriting the damaged bytes in place via
    /// [`StorageBackend::rewrite_epoch`]. Backends with no redundancy
    /// fail by default — the scrubber then quarantines the epoch rather
    /// than serving bad bytes.
    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("no redundant source to repair epoch {epoch}"),
        ))
    }

    /// Frame metadata (uncompressed length, stored CRC) of a page's record
    /// in a finished epoch, without reading or validating its payload.
    /// `None` when the epoch has no record for the page, or when the
    /// backend keeps no per-record metadata (the default).
    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        let _ = (epoch, page);
        Ok(None)
    }
}

// A boxed backend is a backend: composed stacks (`ParityBackend<Box<dyn
// StorageBackend>>`, the policy layer's per-level stores) hold trait
// objects, and every method must forward — a missing forward here would
// silently fall back to a trait default (the exact bug class the wrapper
// conformance suite exists to catch).
impl<B: StorageBackend + ?Sized> StorageBackend for Box<B> {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        (**self).begin_epoch(epoch)
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        (**self).put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        (**self).get_blob(name)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        (**self).epochs()
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        (**self).high_water()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        (**self).read_epoch(epoch, visit)
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        (**self).epoch_page_ids(epoch)
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        (**self).read_page_at(epoch, page)
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        (**self).delete_blob(name)
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        (**self).list_blobs()
    }

    fn bytes_written(&self) -> u64 {
        (**self).bytes_written()
    }

    fn bytes_stored(&self) -> u64 {
        (**self).bytes_stored()
    }

    fn chain(&self) -> io::Result<Vec<ChainEntry>> {
        (**self).chain()
    }

    fn compact(&self, up_to: u64) -> io::Result<CompactionStats> {
        (**self).compact(up_to)
    }

    fn supports_compaction(&self) -> bool {
        (**self).supports_compaction()
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        (**self).install_compacted(from, into, records)
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        (**self).remove_epoch(epoch)
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        (**self).remove_epochs(epochs)
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        (**self).drain_one()
    }

    fn drain_backlog(&self) -> usize {
        (**self).drain_backlog()
    }

    fn io_stats(&self) -> IoStats {
        (**self).io_stats()
    }

    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        (**self).verify_epoch(epoch)
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        (**self).rewrite_epoch(epoch, records)
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        (**self).repair_epoch(epoch)
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        (**self).record_meta(epoch, page)
    }
}

/// Result of [`merge_live_prefix`].
pub(crate) enum MergeOutcome {
    /// The prefix is already a lone full segment at the target epoch:
    /// nothing to fold.
    AlreadyCompact,
    /// The latest-wins merge of the live prefix.
    Merged {
        /// Oldest epoch folded.
        from: u64,
        /// Live segments the merge supersedes.
        segments: u64,
        /// Payload bytes of the superseded segments.
        bytes_before: u64,
        /// One record per surviving page version, ascending by page id.
        records: Vec<(u64, Vec<u8>)>,
    },
}

/// Latest-wins merge of the live chain prefix `..= up_to` — the shared
/// core of the default [`StorageBackend::compact`], also used by wrappers
/// that post-process the merged image before installing it (e.g.
/// `ParityBackend` re-emitting parity groups) so they can append to the
/// merge buffer they already own instead of copying the whole image.
pub(crate) fn merge_live_prefix<B: StorageBackend + ?Sized>(
    backend: &B,
    up_to: u64,
) -> io::Result<MergeOutcome> {
    let live: Vec<ChainEntry> = backend
        .chain()?
        .into_iter()
        .filter(|c| c.epoch <= up_to)
        .collect();
    let Some(&last) = live.last() else {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("compact({up_to}): no live epoch at or below it"),
        ));
    };
    if last.epoch != up_to {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "compact({up_to}): epoch not live (newest live at or below is {})",
                last.epoch
            ),
        ));
    }
    if live.len() == 1 && last.kind == EpochKind::Full {
        return Ok(MergeOutcome::AlreadyCompact);
    }
    let from = live[0].epoch;
    let mut pages: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut bytes_before = 0u64;
    for c in &live {
        backend.read_epoch(c.epoch, &mut |p, d| {
            bytes_before += d.len() as u64;
            pages.insert(p, d.to_vec());
        })?;
    }
    Ok(MergeOutcome::Merged {
        from,
        segments: live.len() as u64,
        bytes_before,
        records: pages.into_iter().collect(),
    })
}

/// Canonical name of the per-checkpoint layout metadata blob. The zero
/// padding keeps lexicographic blob order equal to epoch order, and backends
/// use the shared prefix to retire layout blobs together with their epochs.
pub fn layout_blob_name(checkpoint: u64) -> String {
    format!("layout_{checkpoint:010}")
}

/// Inverse of [`layout_blob_name`]: the epoch a layout blob belongs to, or
/// `None` for blobs with other names.
pub(crate) fn layout_blob_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("layout_")?.parse::<u64>().ok()
}

/// Convenience: write a full epoch from an iterator through a single stream
/// (used by tests and simple callers).
pub fn write_epoch<B: StorageBackend + ?Sized>(
    backend: &B,
    epoch: u64,
    pages: impl IntoIterator<Item = (u64, Vec<u8>)>,
) -> io::Result<()> {
    let writer = backend.begin_epoch(epoch)?;
    for (page, data) in pages {
        writer.write_pages(&[(page, &data)])?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::Arc;

    #[test]
    fn write_epoch_helper_round_trips() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(3, vec![1, 2]), (5, vec![3, 4])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, vec![(3, vec![1, 2]), (5, vec![3, 4])]);
    }

    #[test]
    fn concurrent_streams_commit_one_epoch() {
        let b = MemoryBackend::new();
        let writer: Arc<dyn EpochWriter> = Arc::from(b.begin_epoch(1).unwrap());
        std::thread::scope(|s| {
            for stream in 0..4u64 {
                let writer = Arc::clone(&writer);
                s.spawn(move || {
                    for i in 0..8u64 {
                        let page = stream * 8 + i;
                        let data = [page as u8; 16];
                        writer.write_pages(&[(page, &data)]).unwrap();
                    }
                });
            }
        });
        writer.finish().unwrap();
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d[0]))).unwrap();
        seen.sort_unstable();
        assert_eq!(seen.len(), 32, "every stream's records landed");
        for (p, v) in seen {
            assert_eq!(v as u64, p, "no torn records under concurrency");
        }
        assert_eq!(b.bytes_written(), 32 * 16);
    }

    #[test]
    fn dropped_writer_aborts_epoch() {
        let b = MemoryBackend::new();
        {
            let w = b.begin_epoch(1).unwrap();
            w.write_pages(&[(0, &[1, 2, 3])]).unwrap();
            // Dropped without finish: implicit abort.
        }
        assert!(b.epochs().unwrap().is_empty());
        // The backend accepts a new session afterwards.
        write_epoch(&b, 1, vec![(0, vec![9])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
    }
}
