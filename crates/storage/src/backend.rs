//! The storage backend abstraction (§3.2: "The page manager is designed in a
//! modular fashion such that it is easy to plug in different storage
//! backends where the dirty pages can be committed").
//!
//! A backend persists *epochs*: for each checkpoint, a sequence of
//! `(page id, page bytes)` records, finished atomically. Restore walks
//! epochs oldest-to-newest and applies records latest-wins (incremental
//! checkpointing semantics).

use std::io;

/// A sink + source of checkpoint epochs.
///
/// Write side (committer thread): `begin_epoch` → `write_page`* →
/// `finish_epoch`. `finish_epoch` must make the epoch durable before
/// returning (the paper's "successfully committed to stable storage").
///
/// Read side (restore): `epochs` lists finished epochs, `read_epoch` streams
/// records, `get_blob` retrieves named metadata written with `put_blob`.
pub trait StorageBackend: Send {
    /// Start a new epoch. Epoch numbers must be strictly increasing.
    fn begin_epoch(&mut self, epoch: u64) -> io::Result<()>;

    /// Append one page record to the open epoch.
    fn write_page(&mut self, page: u64, data: &[u8]) -> io::Result<()>;

    /// Durably complete the open epoch.
    fn finish_epoch(&mut self) -> io::Result<()>;

    /// Discard the open epoch (committer error path): the epoch must never
    /// become visible to `epochs`/`read_epoch`. A no-op if none is open.
    fn abort_epoch(&mut self) -> io::Result<()>;

    /// Store a named metadata blob (e.g. the runtime's region layout),
    /// overwriting any previous value. Durable once written.
    fn put_blob(&mut self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Retrieve a named metadata blob.
    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// All *finished* epochs, ascending.
    fn epochs(&self) -> io::Result<Vec<u64>>;

    /// Stream the records of a finished epoch in write order, verifying
    /// integrity. `visit(page, bytes)` is called per record.
    fn read_epoch(
        &self,
        epoch: u64,
        visit: &mut dyn FnMut(u64, &[u8]),
    ) -> io::Result<()>;

    /// Total payload bytes written since creation (diagnostics; excludes
    /// framing overhead).
    fn bytes_written(&self) -> u64;
}

/// Convenience: write a full epoch from an iterator (used by tests and the
/// sync checkpointing path).
pub fn write_epoch<B: StorageBackend + ?Sized>(
    backend: &mut B,
    epoch: u64,
    pages: impl IntoIterator<Item = (u64, Vec<u8>)>,
) -> io::Result<()> {
    backend.begin_epoch(epoch)?;
    for (page, data) in pages {
        backend.write_page(page, &data)?;
    }
    backend.finish_epoch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;

    #[test]
    fn write_epoch_helper_round_trips() {
        let mut b = MemoryBackend::new();
        write_epoch(&mut b, 1, vec![(3, vec![1, 2]), (5, vec![3, 4])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec()))).unwrap();
        assert_eq!(seen, vec![(3, vec![1, 2]), (5, vec![3, 4])]);
    }
}
