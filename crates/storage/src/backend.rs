//! The storage backend abstraction (§3.2: "The page manager is designed in a
//! modular fashion such that it is easy to plug in different storage
//! backends where the dirty pages can be committed").
//!
//! A backend persists *epochs*: for each checkpoint, a set of
//! `(page id, page bytes)` records, finished atomically. Restore walks
//! epochs oldest-to-newest and applies records latest-wins (incremental
//! checkpointing semantics).
//!
//! ## The multi-stream write contract
//!
//! Committing an epoch goes through a per-epoch [`EpochWriter`] session so
//! that several committer streams can feed one epoch concurrently:
//!
//! * [`StorageBackend::begin_epoch`] opens the session (at most one may be
//!   open per backend; epoch numbers must be strictly increasing);
//! * [`EpochWriter::write_pages`] appends a *batch* of page records and may
//!   be called from any number of threads concurrently — implementations
//!   serialise internally as needed;
//! * [`EpochWriter::finish`] is the single atomic commit barrier: it is
//!   called exactly once, after every `write_pages` call has returned, and
//!   must make the epoch durable before returning (the paper's
//!   "successfully committed to stable storage");
//! * [`EpochWriter::abort`] discards the session on the error path — the
//!   epoch must never become visible to `epochs`/`read_epoch`. Dropping a
//!   writer without finishing aborts implicitly.
//!
//! Record order *within* an epoch is unspecified when multiple streams
//! write concurrently. That is sound because the engine commits each page
//! at most once per checkpoint, so latest-wins reconstruction never depends
//! on intra-epoch order. Single-stream writers (tests, `write_epoch`)
//! still observe their own write order on `read_epoch`.

use std::io;

/// One open epoch-commit session. See the module docs for the contract.
pub trait EpochWriter: Send + Sync {
    /// Append a batch of page records. Thread-safe: committer streams call
    /// this concurrently on the same session.
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()>;

    /// Durably complete the epoch (the atomic commit barrier). Must be
    /// called at most once, after all `write_pages` calls have returned.
    fn finish(&self) -> io::Result<()>;

    /// Discard the epoch (committer error path): it must never become
    /// visible to `epochs`/`read_epoch`.
    fn abort(&self) -> io::Result<()>;
}

/// A sink + source of checkpoint epochs. `Send + Sync`: the runtime shares
/// one backend between the checkpoint requester, N committer streams and
/// restore.
pub trait StorageBackend: Send + Sync {
    /// Open the commit session for a new epoch. Epoch numbers must be
    /// strictly increasing; at most one epoch may be open at a time.
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>>;

    /// Store a named metadata blob (e.g. the runtime's region layout),
    /// overwriting any previous value. Durable once written.
    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Retrieve a named metadata blob.
    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// All *finished* epochs, ascending.
    fn epochs(&self) -> io::Result<Vec<u64>>;

    /// Stream the records of a finished epoch, verifying integrity.
    /// `visit(page, bytes)` is called per record.
    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()>;

    /// Total payload bytes written since creation (diagnostics; excludes
    /// framing overhead). Implementations keep this in atomics so the count
    /// stays exact under concurrent streams.
    fn bytes_written(&self) -> u64;
}

/// Convenience: write a full epoch from an iterator through a single stream
/// (used by tests and simple callers).
pub fn write_epoch<B: StorageBackend + ?Sized>(
    backend: &B,
    epoch: u64,
    pages: impl IntoIterator<Item = (u64, Vec<u8>)>,
) -> io::Result<()> {
    let writer = backend.begin_epoch(epoch)?;
    for (page, data) in pages {
        writer.write_pages(&[(page, &data)])?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::Arc;

    #[test]
    fn write_epoch_helper_round_trips() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(3, vec![1, 2]), (5, vec![3, 4])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, vec![(3, vec![1, 2]), (5, vec![3, 4])]);
    }

    #[test]
    fn concurrent_streams_commit_one_epoch() {
        let b = MemoryBackend::new();
        let writer: Arc<dyn EpochWriter> = Arc::from(b.begin_epoch(1).unwrap());
        std::thread::scope(|s| {
            for stream in 0..4u64 {
                let writer = Arc::clone(&writer);
                s.spawn(move || {
                    for i in 0..8u64 {
                        let page = stream * 8 + i;
                        let data = [page as u8; 16];
                        writer.write_pages(&[(page, &data)]).unwrap();
                    }
                });
            }
        });
        writer.finish().unwrap();
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d[0]))).unwrap();
        seen.sort_unstable();
        assert_eq!(seen.len(), 32, "every stream's records landed");
        for (p, v) in seen {
            assert_eq!(v as u64, p, "no torn records under concurrency");
        }
        assert_eq!(b.bytes_written(), 32 * 16);
    }

    #[test]
    fn dropped_writer_aborts_epoch() {
        let b = MemoryBackend::new();
        {
            let w = b.begin_epoch(1).unwrap();
            w.write_pages(&[(0, &[1, 2, 3])]).unwrap();
            // Dropped without finish: implicit abort.
        }
        assert!(b.epochs().unwrap().is_empty());
        // The backend accepts a new session afterwards.
        write_epoch(&b, 1, vec![(0, vec![9])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
    }
}
