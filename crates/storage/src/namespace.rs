//! Namespaced sub-roots under one shared storage root.
//!
//! Two multiplexing layers carve a single checkpoint root into independent
//! namespaces: the group coordinator gives every MPI rank a `rank_NNNN/`
//! subdirectory, and the multi-tenant service gives every tenant a
//! `tenant_NNNN/` one. Both use the same scheme — a lowercase label plus a
//! zero-padded index — defined here once, so tooling (and humans) can
//! enumerate either kind of root the same way.

use std::io;
use std::path::{Path, PathBuf};

/// Width of the zero-padded index (`rank_0007`, `tenant_0123`). Fixed so
/// lexicographic directory order is numeric order up to 9999 members.
const INDEX_WIDTH: usize = 4;

/// The namespace subdirectory for member `index` of kind `label` under
/// `root`: `<root>/<label>_<index:04>`.
///
/// `label` must be non-empty ASCII-alphanumeric (it becomes a path
/// component; no separators, no dots).
pub fn scoped_dir(root: &Path, label: &str, index: usize) -> PathBuf {
    debug_assert!(
        !label.is_empty() && label.bytes().all(|b| b.is_ascii_alphanumeric()),
        "namespace label must be non-empty alphanumeric: {label:?}"
    );
    root.join(format!("{label}_{index:04}"))
}

/// Parse a directory name produced by [`scoped_dir`] back into its index,
/// checking the label. `None` for foreign names (e.g. a `GLOBAL` manifest
/// next to the rank directories).
pub fn scoped_index(name: &str, label: &str) -> Option<usize> {
    let rest = name.strip_prefix(label)?.strip_prefix('_')?;
    if rest.len() < INDEX_WIDTH || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Enumerate the existing member indices of kind `label` under `root`, in
/// ascending order. A missing root is an empty namespace, not an error.
pub fn scoped_members(root: &Path, label: &str) -> io::Result<Vec<usize>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        if let Some(idx) = entry
            .file_name()
            .to_str()
            .and_then(|n| scoped_index(n, label))
        {
            out.push(idx);
        }
    }
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_dir_and_index_round_trip() {
        let d = scoped_dir(Path::new("/root"), "tenant", 7);
        assert_eq!(d, Path::new("/root/tenant_0007"));
        assert_eq!(scoped_index("tenant_0007", "tenant"), Some(7));
        assert_eq!(scoped_index("rank_0123", "rank"), Some(123));
        assert_eq!(scoped_index("tenant_12345", "tenant"), Some(12345));
        assert_eq!(scoped_index("tenant_007", "tenant"), None, "too narrow");
        assert_eq!(scoped_index("tenant_00x7", "tenant"), None);
        assert_eq!(scoped_index("rank_0007", "tenant"), None, "label checked");
        assert_eq!(scoped_index("GLOBAL", "rank"), None);
    }

    #[test]
    fn scoped_members_lists_only_matching_dirs() {
        let dir = tempdir();
        std::fs::create_dir(scoped_dir(&dir, "tenant", 3)).unwrap();
        std::fs::create_dir(scoped_dir(&dir, "tenant", 1)).unwrap();
        std::fs::create_dir(scoped_dir(&dir, "rank", 2)).unwrap();
        std::fs::write(dir.join("tenant_0009"), b"a file, not a dir").unwrap();
        assert_eq!(scoped_members(&dir, "tenant").unwrap(), vec![1, 3]);
        assert_eq!(scoped_members(&dir, "rank").unwrap(), vec![2]);
        assert_eq!(
            scoped_members(&dir.join("missing"), "tenant").unwrap(),
            Vec::<usize>::new()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aickpt-ns-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
