//! Shared page cache for demand-paged restore.
//!
//! A restore storm — N processes-worth of readers in one address space all
//! reviving the same checkpoint — would hit storage once *per reader* per
//! page without a shared cache. [`PageCache`] sits between the restore
//! fillers and [`crate::StorageBackend::read_page_at`]: keyed by
//! `(checkpoint, page)`, sharded to keep lock contention off the fill hot
//! path, LRU-evicted against a byte budget, with per-key single-flight
//! loading so concurrent misses on one page collapse into a single disk
//! read.
//!
//! Payloads are handed out as `Arc<[u8]>`: every reader fills from the same
//! immutable buffer, so the storm's memory footprint is one copy per page
//! plus the restored regions themselves.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of independent shards. Keys spread by a cheap hash, so N fillers
/// rarely contend on one lock.
const SHARDS: usize = 16;

/// Cache key: `(namespace, page)`. The namespace is the checkpoint number —
/// two restores of different checkpoints never share entries.
type Key = (u64, u64);

#[derive(Debug)]
struct Entry {
    data: Arc<[u8]>,
    /// LRU stamp: the shard's logical clock at last touch.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Key, Entry>,
    /// stamp → key, oldest first. Stamps are unique per shard, so this is a
    /// faithful recency order.
    lru: BTreeMap<u64, Key>,
    clock: u64,
    bytes: usize,
    /// Per-key single-flight locks: the first missing reader loads, the
    /// rest block on the key's mutex and then hit the cache.
    loading: HashMap<Key, Arc<Mutex<()>>>,
}

impl Shard {
    fn touch(&mut self, key: Key) -> Option<Arc<[u8]>> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(&key)?;
        self.lru.remove(&entry.stamp);
        entry.stamp = clock;
        self.lru.insert(clock, key);
        Some(Arc::clone(&entry.data))
    }

    fn insert(&mut self, key: Key, data: Arc<[u8]>, budget: usize) {
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.stamp);
            self.bytes -= old.data.len();
        }
        self.clock += 1;
        self.bytes += data.len();
        self.lru.insert(self.clock, key);
        self.entries.insert(
            key,
            Entry {
                data,
                stamp: self.clock,
            },
        );
        // Evict oldest-first down to the budget, but always keep the entry
        // just inserted — a single page larger than the whole budget must
        // still be servable.
        while self.bytes > budget && self.lru.len() > 1 {
            let (&stamp, &victim) = self.lru.iter().next().expect("lru non-empty");
            self.lru.remove(&stamp);
            let gone = self.entries.remove(&victim).expect("entry for lru key");
            self.bytes -= gone.data.len();
        }
    }
}

/// Point-in-time counters of a [`PageCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to load from the backend.
    pub misses: u64,
    /// Payload bytes currently resident.
    pub bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// Sharded LRU cache of decoded page payloads, shared by concurrent
/// restores (see the module docs).
#[derive(Debug)]
pub struct PageCache {
    shards: Box<[Mutex<Shard>]>,
    /// Byte budget per shard (total budget / [`SHARDS`]).
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PageCache {
    /// Cache bounded by `capacity_bytes` of payload across all shards.
    pub fn new(capacity_bytes: usize) -> Self {
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(Shard::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            shard_budget: capacity_bytes.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: Key) -> &Mutex<Shard> {
        // Cheap avalanching mix of both key halves; fixed odd constants.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        &self.shards[(h >> 56) as usize % SHARDS]
    }

    /// Cached payload for `(ns, page)`, refreshing its recency, or `None`.
    pub fn get(&self, ns: u64, page: u64) -> Option<Arc<[u8]>> {
        let key = (ns, page);
        let got = self.shard(key).lock().touch(key);
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert (or refresh) a payload.
    pub fn insert(&self, ns: u64, page: u64, data: Arc<[u8]>) {
        let key = (ns, page);
        self.shard(key).lock().insert(key, data, self.shard_budget);
    }

    /// Look up `(ns, page)`; on a miss run `load` and cache its result.
    /// Concurrent misses on one key are single-flighted: exactly one caller
    /// runs `load`, the rest wait and then hit the cache. `Ok(None)` (page
    /// absent from the epoch) is **not** cached — the caller resolves
    /// absence through its locator before ever asking, so in practice this
    /// path only fires on caller bugs and re-probing is the safe behaviour.
    pub fn get_or_load(
        &self,
        ns: u64,
        page: u64,
        load: impl FnOnce() -> io::Result<Option<Vec<u8>>>,
    ) -> io::Result<Option<Arc<[u8]>>> {
        let key = (ns, page);
        if let Some(hit) = self.shard(key).lock().touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(hit));
        }
        // Miss: take (or create) the key's single-flight lock *outside* the
        // shard lock, so a slow load never blocks unrelated pages.
        let flight = {
            let mut shard = self.shard(key).lock();
            Arc::clone(
                shard
                    .loading
                    .entry(key)
                    .or_insert_with(|| Arc::new(Mutex::new(()))),
            )
        };
        let _guard = flight.lock();
        // Re-check: a racing loader may have filled the entry while we
        // waited for the flight lock.
        if let Some(hit) = self.shard(key).lock().touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let loaded = load();
        let mut shard = self.shard(key).lock();
        shard.loading.remove(&key);
        match loaded {
            Ok(Some(data)) => {
                let data: Arc<[u8]> = Arc::from(data);
                shard.insert(key, Arc::clone(&data), self.shard_budget);
                Ok(Some(data))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Drop `(ns, page)` if cached. Repair rewrote the stored bytes; a
    /// stale payload must not outlive them.
    pub fn remove(&self, ns: u64, page: u64) {
        let key = (ns, page);
        let mut shard = self.shard(key).lock();
        if let Some(old) = shard.entries.remove(&key) {
            shard.lru.remove(&old.stamp);
            shard.bytes -= old.data.len();
        }
    }

    /// Drop every cached page of `ns` — a whole-segment rewrite (or a
    /// quarantine) invalidates the epoch wholesale.
    pub fn remove_ns(&self, ns: u64) {
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            let victims: Vec<Key> = s.entries.keys().copied().filter(|k| k.0 == ns).collect();
            for key in victims {
                if let Some(old) = s.entries.remove(&key) {
                    s.lru.remove(&old.stamp);
                    s.bytes -= old.data.len();
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let mut bytes = 0u64;
        let mut entries = 0u64;
        for shard in self.shards.iter() {
            let s = shard.lock();
            bytes += s.bytes as u64;
            entries += s.entries.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hit_after_insert_and_namespace_isolation() {
        let c = PageCache::new(1 << 20);
        c.insert(1, 7, Arc::from(vec![1, 2, 3]));
        assert_eq!(c.get(1, 7).unwrap().as_ref(), &[1, 2, 3]);
        assert!(c.get(2, 7).is_none(), "other checkpoint, other entry");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 3));
    }

    #[test]
    fn get_or_load_loads_once_then_hits() {
        let c = PageCache::new(1 << 20);
        let loads = AtomicUsize::new(0);
        for _ in 0..3 {
            let got = c
                .get_or_load(5, 9, || {
                    loads.fetch_add(1, Ordering::SeqCst);
                    Ok(Some(vec![42]))
                })
                .unwrap()
                .unwrap();
            assert_eq!(got.as_ref(), &[42]);
        }
        assert_eq!(loads.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_misses_single_flight() {
        let c = Arc::new(PageCache::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let loads = Arc::clone(&loads);
                s.spawn(move || {
                    let got = c
                        .get_or_load(1, 3, || {
                            loads.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            Ok(Some(vec![7; 64]))
                        })
                        .unwrap()
                        .unwrap();
                    assert_eq!(got.len(), 64);
                });
            }
        });
        assert_eq!(loads.load(Ordering::SeqCst), 1, "one disk read, N readers");
    }

    #[test]
    fn evicts_oldest_when_over_budget() {
        // Budget of one shard ≈ 64 bytes; everything below hashes wherever
        // it likes, so drive a single key-space hard and check global bytes
        // stay bounded.
        let c = PageCache::new(SHARDS * 64);
        for page in 0..256u64 {
            c.insert(9, page, Arc::from(vec![page as u8; 32]));
        }
        let s = c.stats();
        assert!(
            s.bytes <= (SHARDS * 64) as u64 + 32,
            "resident {} exceeds budget",
            s.bytes
        );
        assert!(s.entries < 256);
    }

    #[test]
    fn error_loads_are_not_cached() {
        let c = PageCache::new(1 << 20);
        let err = c
            .get_or_load(1, 1, || Err(io::Error::other("disk gone")))
            .unwrap_err();
        assert_eq!(err.to_string(), "disk gone");
        // Next attempt retries the load.
        let got = c.get_or_load(1, 1, || Ok(Some(vec![5]))).unwrap().unwrap();
        assert_eq!(got.as_ref(), &[5]);
    }

    #[test]
    fn repair_invalidation_evicts_stale_entries() {
        let c = PageCache::new(1 << 20);
        c.insert(3, 1, Arc::from(vec![1; 8]));
        c.insert(3, 2, Arc::from(vec![2; 8]));
        c.insert(4, 1, Arc::from(vec![3; 8]));
        // Page-granular invalidation after a targeted repair.
        c.remove(3, 1);
        assert!(c.get(3, 1).is_none(), "repaired page evicted");
        assert_eq!(c.get(3, 2).unwrap().as_ref(), &[2; 8]);
        // Whole-epoch invalidation after a segment rewrite.
        c.remove_ns(3);
        assert!(c.get(3, 2).is_none());
        assert_eq!(
            c.get(4, 1).unwrap().as_ref(),
            &[3; 8],
            "other epochs keep their entries"
        );
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (1, 8));
    }

    /// The degraded-read regression guard: when the level behind a fill
    /// is failing, every concurrent waiter piled on the single-flight
    /// lock must observe the error itself — none may be handed a poisoned
    /// (or phantom) cache entry — and the failure must leave no residue
    /// that would mask a later, healthy level.
    #[test]
    fn concurrent_waiters_all_observe_a_failing_fill() {
        let c = Arc::new(PageCache::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(std::sync::Barrier::new(8));
        let errors = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let loads = Arc::clone(&loads);
                let start = Arc::clone(&start);
                let errors = Arc::clone(&errors);
                s.spawn(move || {
                    start.wait();
                    let got = c.get_or_load(2, 11, || {
                        loads.fetch_add(1, Ordering::SeqCst);
                        // Widen the window so waiters stack up on the
                        // flight lock while a failing load is running.
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        Err(io::Error::other("level down"))
                    });
                    match got {
                        Err(e) => {
                            assert_eq!(e.to_string(), "level down");
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                        Ok(hit) => panic!("poisoned fill surfaced as {hit:?}"),
                    }
                });
            }
        });
        assert_eq!(
            errors.load(Ordering::SeqCst),
            8,
            "every waiter observes the failure, not a cached phantom"
        );
        assert!(
            loads.load(Ordering::SeqCst) >= 1,
            "at least one real load attempt ran"
        );
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (0, 0), "poisoned fill was not cached");

        // The level heals (or a slower level serves the page): the next
        // fill must succeed and only then become a cache hit.
        let healthy = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let healthy = Arc::clone(&healthy);
            let got = c
                .get_or_load(2, 11, move || {
                    healthy.fetch_add(1, Ordering::SeqCst);
                    Ok(Some(vec![9; 16]))
                })
                .unwrap()
                .unwrap();
            assert_eq!(got.as_ref(), &[9; 16]);
        }
        assert_eq!(healthy.load(Ordering::SeqCst), 1, "healthy fill cached");
    }
}
