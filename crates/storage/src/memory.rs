//! In-memory storage backend: the reference implementation of the backend
//! contract, used by unit/property tests and by experiments that only care
//! about checkpointing dynamics, not durability.
//!
//! [`MemoryBackend::shared`] returns a handle pair so a test can hand the
//! backend to the committer thread while keeping a window into what was
//! persisted.

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::StorageBackend;

/// Page records of one epoch, in write order.
type Records = Vec<(u64, Vec<u8>)>;

#[derive(Debug, Default)]
struct Store {
    /// epoch -> records in write order.
    finished: BTreeMap<u64, Records>,
    open: Option<(u64, Records)>,
    blobs: BTreeMap<String, Vec<u8>>,
    bytes_written: u64,
}

/// Backend keeping everything in RAM.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    store: Arc<Mutex<Store>>,
}

impl MemoryBackend {
    /// Fresh, empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// A backend plus a second handle observing the same store (both are
    /// the same `Arc` under the hood).
    pub fn shared() -> (Self, Self) {
        let b = Self::new();
        (b.clone(), b)
    }

    /// Snapshot of a finished epoch's records (test convenience).
    pub fn epoch_records(&self, epoch: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        self.store.lock().finished.get(&epoch).cloned()
    }

    /// Page count across all finished epochs.
    pub fn total_pages(&self) -> usize {
        self.store.lock().finished.values().map(Vec::len).sum()
    }
}

impl StorageBackend for MemoryBackend {
    fn begin_epoch(&mut self, epoch: u64) -> io::Result<()> {
        let mut s = self.store.lock();
        if s.open.is_some() {
            return Err(io::Error::other("previous epoch still open"));
        }
        if s.finished.keys().next_back().is_some_and(|&last| epoch <= last) {
            return Err(io::Error::other(format!(
                "epoch {epoch} not increasing"
            )));
        }
        s.open = Some((epoch, Vec::new()));
        Ok(())
    }

    fn write_page(&mut self, page: u64, data: &[u8]) -> io::Result<()> {
        let mut s = self.store.lock();
        s.bytes_written += data.len() as u64;
        match &mut s.open {
            Some((_, records)) => {
                records.push((page, data.to_vec()));
                Ok(())
            }
            None => Err(io::Error::other("no open epoch")),
        }
    }

    fn finish_epoch(&mut self) -> io::Result<()> {
        let mut s = self.store.lock();
        match s.open.take() {
            Some((epoch, records)) => {
                s.finished.insert(epoch, records);
                Ok(())
            }
            None => Err(io::Error::other("no open epoch")),
        }
    }

    fn abort_epoch(&mut self) -> io::Result<()> {
        self.store.lock().open = None;
        Ok(())
    }

    fn put_blob(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.store.lock().blobs.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.store.lock().blobs.get(name).cloned())
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        Ok(self.store.lock().finished.keys().copied().collect())
    }

    fn read_epoch(
        &self,
        epoch: u64,
        visit: &mut dyn FnMut(u64, &[u8]),
    ) -> io::Result<()> {
        let s = self.store.lock();
        let records = s
            .finished
            .get(&epoch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("epoch {epoch}")))?;
        for (page, data) in records {
            visit(*page, data);
        }
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.store.lock().bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_ordered_and_isolated() {
        let mut b = MemoryBackend::new();
        b.begin_epoch(1).unwrap();
        b.write_page(10, &[1]).unwrap();
        b.finish_epoch().unwrap();
        b.begin_epoch(2).unwrap();
        b.write_page(20, &[2]).unwrap();
        b.finish_epoch().unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1, 2]);
        assert_eq!(b.epoch_records(1).unwrap(), vec![(10, vec![1])]);
        assert_eq!(b.epoch_records(2).unwrap(), vec![(20, vec![2])]);
        assert_eq!(b.bytes_written(), 2);
    }

    #[test]
    fn non_increasing_epoch_rejected() {
        let mut b = MemoryBackend::new();
        b.begin_epoch(5).unwrap();
        b.finish_epoch().unwrap();
        assert!(b.begin_epoch(5).is_err());
        assert!(b.begin_epoch(4).is_err());
        b.begin_epoch(6).unwrap();
    }

    #[test]
    fn write_without_open_epoch_fails() {
        let mut b = MemoryBackend::new();
        assert!(b.write_page(0, &[0]).is_err());
        assert!(b.finish_epoch().is_err());
    }

    #[test]
    fn double_begin_fails() {
        let mut b = MemoryBackend::new();
        b.begin_epoch(1).unwrap();
        assert!(b.begin_epoch(2).is_err());
    }

    #[test]
    fn unfinished_epoch_is_invisible() {
        let mut b = MemoryBackend::new();
        b.begin_epoch(1).unwrap();
        b.write_page(0, &[9]).unwrap();
        assert!(b.epochs().unwrap().is_empty(), "not finished yet");
        assert!(b.read_epoch(1, &mut |_, _| {}).is_err());
    }

    #[test]
    fn blobs_round_trip_and_overwrite() {
        let mut b = MemoryBackend::new();
        assert_eq!(b.get_blob("layout").unwrap(), None);
        b.put_blob("layout", b"v1").unwrap();
        b.put_blob("layout", b"v2").unwrap();
        assert_eq!(b.get_blob("layout").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn shared_handles_observe_each_other() {
        let (mut writer, reader) = MemoryBackend::shared();
        writer.begin_epoch(1).unwrap();
        writer.write_page(7, &[7, 7]).unwrap();
        writer.finish_epoch().unwrap();
        assert_eq!(reader.epoch_records(1).unwrap(), vec![(7, vec![7, 7])]);
    }
}
