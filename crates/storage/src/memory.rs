//! In-memory storage backend: the reference implementation of the backend
//! contract, used by unit/property tests and by experiments that only care
//! about checkpointing dynamics, not durability.
//!
//! [`MemoryBackend::shared`] returns a handle pair so a test can hand the
//! backend to the committer while keeping a window into what was persisted.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{
    layout_blob_epoch, layout_blob_name, ChainEntry, EpochKind, EpochWriter, StorageBackend,
};
use crate::checksum::crc64;
use crate::codec::{self, Compression, Encoding};
use crate::scrub::RecordMeta;

/// One stored page payload: kept in its encoded form (same codec as the
/// file backend's `AICKSEG2` records), decoded — and CRC-verified, same as
/// a segment frame — on read.
#[derive(Debug, Clone)]
struct StoredPayload {
    enc: Encoding,
    raw_len: usize,
    /// CRC-64 over the *uncompressed* payload, mirroring `AICKSEG2`.
    crc: u64,
    stored: Vec<u8>,
}

impl StoredPayload {
    fn encode(data: &[u8], compression: Compression) -> Self {
        let (enc, encoded) = codec::encode(data, compression);
        Self {
            enc,
            raw_len: data.len(),
            crc: crc64(data),
            stored: encoded.unwrap_or_else(|| data.to_vec()),
        }
    }

    /// Decoded payload bytes, verified against the CRC taken at write
    /// time — simulated at-rest corruption (see
    /// [`MemoryBackend::corrupt_stored_page`]) fails here exactly like a
    /// damaged segment frame would.
    fn decode(&self, epoch: u64, page: u64) -> io::Result<Vec<u8>> {
        let decoded = codec::decode(self.enc, &self.stored, self.raw_len)?
            .unwrap_or_else(|| self.stored.clone());
        if crc64(&decoded) != self.crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("CRC mismatch for page {page} in epoch {epoch}"),
            ));
        }
        Ok(decoded)
    }
}

/// Page records of one epoch, in arrival order.
type Records = Vec<(u64, StoredPayload)>;

#[derive(Debug, Default)]
struct Store {
    /// epoch -> records in arrival order.
    finished: BTreeMap<u64, Records>,
    /// Epochs holding a full (compacted) image instead of a delta.
    full: std::collections::BTreeSet<u64>,
    /// Highest epoch number ever committed or retired — retired numbers
    /// must not be reused (mirrors the file backend's manifest history).
    high_water: Option<u64>,
    open: Option<(u64, Records)>,
    blobs: BTreeMap<String, Vec<u8>>,
}

#[derive(Debug)]
struct Shared {
    store: Mutex<Store>,
    bytes_written: AtomicU64,
    bytes_stored: AtomicU64,
    compression: Compression,
}

impl Default for Shared {
    fn default() -> Self {
        Self {
            store: Mutex::default(),
            bytes_written: AtomicU64::new(0),
            bytes_stored: AtomicU64::new(0),
            // Raw by default: the common role of an in-memory backend is
            // the latency-critical fast tier (or a test double), where
            // encode-at-commit + decode-at-drain would be pure overhead —
            // the durable tier re-encodes anyway. Opt in per instance via
            // `MemoryBackend::with_compression`.
            compression: Compression::None,
        }
    }
}

/// Backend keeping everything in RAM.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    shared: Arc<Shared>,
}

impl MemoryBackend {
    /// Fresh, empty backend (records stored raw; see
    /// [`MemoryBackend::with_compression`] to opt into the `AICKSEG2`
    /// codec).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh backend with an explicit payload-encoding policy.
    pub fn with_compression(compression: Compression) -> Self {
        Self {
            shared: Arc::new(Shared {
                compression,
                ..Shared::default()
            }),
        }
    }

    /// A backend plus a second handle observing the same store (both are
    /// the same `Arc` under the hood).
    pub fn shared() -> (Self, Self) {
        let b = Self::new();
        (b.clone(), b)
    }

    /// Snapshot of a finished epoch's records, decoded (test convenience;
    /// panics on a corrupted store — use
    /// [`StorageBackend::verify_epoch`] to *observe* corruption).
    pub fn epoch_records(&self, epoch: u64) -> Option<Vec<(u64, Vec<u8>)>> {
        self.shared
            .store
            .lock()
            .finished
            .get(&epoch)
            .map(|records| {
                records
                    .iter()
                    .map(|(p, d)| (*p, d.decode(epoch, *p).expect("record decodes")))
                    .collect()
            })
    }

    /// Test hook: flip one byte of the *stored* (encoded) payload of the
    /// latest record for `page` in a finished epoch — simulated at-rest
    /// bitrot below the commit point. `byte` indexes the stored payload
    /// modulo its length. Reads of the page fail with `InvalidData` until
    /// the record is rewritten.
    pub fn corrupt_stored_page(&self, epoch: u64, page: u64, byte: usize) -> io::Result<()> {
        let mut s = self.shared.store.lock();
        let records = s
            .finished
            .get_mut(&epoch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("epoch {epoch}")))?;
        let rec = records
            .iter_mut()
            .rev()
            .find(|(p, _)| *p == page)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no record for page {page} in epoch {epoch}"),
                )
            })?;
        if rec.1.stored.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot corrupt an empty payload",
            ));
        }
        let len = rec.1.stored.len();
        rec.1.stored[byte % len] ^= 0xFF;
        Ok(())
    }

    /// Page count across all finished epochs.
    pub fn total_pages(&self) -> usize {
        self.shared
            .store
            .lock()
            .finished
            .values()
            .map(Vec::len)
            .sum()
    }
}

/// A named collection of [`MemoryBackend`] namespaces — the in-RAM analogue
/// of a [`FileBackend`](crate::FileBackend) root directory holding
/// `tenant_NNNN/` sub-roots. A tenant that detaches and later re-opens the
/// same name gets the *same* store back, so crash/restart tests can run
/// entirely in memory.
#[derive(Debug, Clone, Default)]
pub struct MemoryRoot {
    namespaces: Arc<Mutex<BTreeMap<String, MemoryBackend>>>,
}

impl MemoryRoot {
    /// Fresh, empty root.
    pub fn new() -> Self {
        Self::default()
    }

    /// The backend for `name`, creating an empty one on first use. All
    /// handles for one name share a store.
    pub fn open(&self, name: &str) -> MemoryBackend {
        self.namespaces
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Names with a backend, in lexicographic order.
    pub fn names(&self) -> Vec<String> {
        self.namespaces.lock().keys().cloned().collect()
    }
}

/// Open-epoch session on a [`MemoryBackend`].
#[derive(Debug)]
struct MemoryEpochWriter {
    shared: Arc<Shared>,
    epoch: u64,
    closed: AtomicBool,
}

impl MemoryEpochWriter {
    /// Close the session; `commit` decides finished vs. discarded.
    fn close(&self, commit: bool) -> io::Result<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Err(io::Error::other("epoch session already closed"));
        }
        let mut s = self.shared.store.lock();
        match s.open.take() {
            Some((epoch, records)) => {
                debug_assert_eq!(epoch, self.epoch);
                if commit {
                    s.finished.insert(epoch, records);
                    s.high_water = Some(s.high_water.map_or(epoch, |h| h.max(epoch)));
                }
                Ok(())
            }
            None => Err(io::Error::other("no open epoch")),
        }
    }
}

impl EpochWriter for MemoryEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        let mut s = self.shared.store.lock();
        // Checked under the store lock (close() flips the flag before it
        // takes the lock, so this cannot race a concurrent abort): the
        // epoch-number match below is not enough on its own — an aborted
        // epoch's number may be reused by a *new* session, and this stale
        // writer must not inject records into it.
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::other("epoch session closed"));
        }
        let bytes: u64 = batch.iter().map(|(_, d)| d.len() as u64).sum();
        let compression = self.shared.compression;
        match &mut s.open {
            Some((epoch, records)) if *epoch == self.epoch => {
                let mut stored_bytes = 0u64;
                records.extend(batch.iter().map(|&(p, d)| {
                    let rec = StoredPayload::encode(d, compression);
                    stored_bytes += rec.stored.len() as u64;
                    (p, rec)
                }));
                self.shared
                    .bytes_written
                    .fetch_add(bytes, Ordering::Relaxed);
                self.shared
                    .bytes_stored
                    .fetch_add(stored_bytes, Ordering::Relaxed);
                Ok(())
            }
            _ => Err(io::Error::other("no open epoch")),
        }
    }

    fn finish(&self) -> io::Result<()> {
        self.close(true)
    }

    fn abort(&self) -> io::Result<()> {
        self.close(false)
    }
}

impl Drop for MemoryEpochWriter {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::Acquire) {
            let _ = self.close(false);
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        let mut s = self.shared.store.lock();
        if s.open.is_some() {
            return Err(io::Error::other("previous epoch still open"));
        }
        if s.high_water.is_some_and(|h| epoch <= h) {
            return Err(io::Error::other(format!("epoch {epoch} not increasing")));
        }
        s.open = Some((epoch, Vec::new()));
        Ok(Box::new(MemoryEpochWriter {
            shared: Arc::clone(&self.shared),
            epoch,
            closed: AtomicBool::new(false),
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.shared
            .store
            .lock()
            .blobs
            .insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.shared.store.lock().blobs.get(name).cloned())
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        self.shared.store.lock().blobs.remove(name);
        Ok(())
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        Ok(self.shared.store.lock().blobs.keys().cloned().collect())
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        Ok(self.shared.store.lock().finished.keys().copied().collect())
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        Ok(self.shared.store.lock().high_water)
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        // Visit under the store lock (records are decoded one at a time,
        // never snapshot wholesale): `visit` must not reenter this backend,
        // which no restore-path consumer does.
        let s = self.shared.store.lock();
        let records = s
            .finished
            .get(&epoch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("epoch {epoch}")))?;
        for (page, data) in records {
            let decoded = data.decode(epoch, *page)?;
            visit(*page, &decoded);
        }
        Ok(())
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        let s = self.shared.store.lock();
        let records = s
            .finished
            .get(&epoch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("epoch {epoch}")))?;
        Ok(records.iter().map(|(p, _)| *p).collect())
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        let s = self.shared.store.lock();
        let records = s
            .finished
            .get(&epoch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("epoch {epoch}")))?;
        // Latest record wins, matching `read_epoch` replay semantics.
        records
            .iter()
            .rev()
            .find(|(p, _)| *p == page)
            .map(|(_, d)| d.decode(epoch, page))
            .transpose()
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        let s = self.shared.store.lock();
        let records = s
            .finished
            .get(&epoch)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("epoch {epoch}")))?;
        Ok(records
            .iter()
            .rev()
            .find(|(p, _)| *p == page)
            .map(|(_, d)| RecordMeta {
                raw_len: d.raw_len as u32,
                crc: d.crc,
            }))
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        let mut s = self.shared.store.lock();
        if !s.finished.contains_key(&epoch) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("rewrite_epoch: epoch {epoch} is not live"),
            ));
        }
        // Fresh encode under the current policy; the chain kind (full vs
        // delta) is untouched — repair replaces bytes, not semantics.
        let compression = self.shared.compression;
        let encoded: Records = records
            .iter()
            .map(|(p, d)| (*p, StoredPayload::encode(d, compression)))
            .collect();
        s.finished.insert(epoch, encoded);
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.shared.bytes_written.load(Ordering::Relaxed)
    }

    fn bytes_stored(&self) -> u64 {
        self.shared.bytes_stored.load(Ordering::Relaxed)
    }

    fn chain(&self) -> io::Result<Vec<ChainEntry>> {
        let s = self.shared.store.lock();
        Ok(s.finished
            .keys()
            .map(|&epoch| ChainEntry {
                epoch,
                kind: if s.full.contains(&epoch) {
                    EpochKind::Full
                } else {
                    EpochKind::Delta
                },
            })
            .collect())
    }

    fn supports_compaction(&self) -> bool {
        true
    }

    fn install_compacted(
        &self,
        _from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        let mut s = self.shared.store.lock();
        if !s.finished.contains_key(&into) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("install_compacted: epoch {into} is not live"),
            ));
        }
        // Like the file backend's fold: surviving pages are re-encoded
        // under the current policy.
        let compression = self.shared.compression;
        let encoded: Records = records
            .iter()
            .map(|(p, d)| (*p, StoredPayload::encode(d, compression)))
            .collect();
        s.finished.retain(|&e, _| e > into);
        s.full.retain(|&e| e > into);
        s.finished.insert(into, encoded);
        s.full.insert(into);
        // Layout blobs below the new horizon refer to unreachable restore
        // points; the blob at `into` stays (restore needs it).
        s.blobs
            .retain(|name, _| layout_blob_epoch(name).is_none_or(|e| e >= into));
        Ok(())
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        let mut s = self.shared.store.lock();
        if s.finished.remove(&epoch).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("epoch {epoch} not live"),
            ));
        }
        s.full.remove(&epoch);
        s.blobs.remove(&layout_blob_name(epoch));
        // Retired numbers stay burned (high_water already covers them).
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;

    #[test]
    fn epochs_are_ordered_and_isolated() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(10, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(20, vec![2])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1, 2]);
        assert_eq!(b.epoch_records(1).unwrap(), vec![(10, vec![1])]);
        assert_eq!(b.epoch_records(2).unwrap(), vec![(20, vec![2])]);
        assert_eq!(b.bytes_written(), 2);
    }

    #[test]
    fn non_increasing_epoch_rejected() {
        let b = MemoryBackend::new();
        b.begin_epoch(5).unwrap().finish().unwrap();
        assert!(b.begin_epoch(5).is_err());
        assert!(b.begin_epoch(4).is_err());
        b.begin_epoch(6).unwrap().finish().unwrap();
    }

    #[test]
    fn write_after_close_fails() {
        let b = MemoryBackend::new();
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[0])]).unwrap();
        w.finish().unwrap();
        assert!(w.write_pages(&[(1, &[1])]).is_err());
        assert!(w.finish().is_err(), "finish is exactly-once");
    }

    #[test]
    fn double_begin_fails() {
        let b = MemoryBackend::new();
        let _w = b.begin_epoch(1).unwrap();
        assert!(b.begin_epoch(2).is_err());
    }

    #[test]
    fn unfinished_epoch_is_invisible() {
        let b = MemoryBackend::new();
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[9])]).unwrap();
        assert!(b.epochs().unwrap().is_empty(), "not finished yet");
        assert!(b.read_epoch(1, &mut |_, _| {}).is_err());
    }

    #[test]
    fn aborted_epoch_discarded_and_number_reusable() {
        let b = MemoryBackend::new();
        let w = b.begin_epoch(3).unwrap();
        w.write_pages(&[(1, &[1, 1])]).unwrap();
        w.abort().unwrap();
        assert!(b.epochs().unwrap().is_empty());
        // An aborted epoch number may be retried (it was never committed).
        write_epoch(&b, 3, vec![(2, vec![2])]).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![3]);
    }

    #[test]
    fn stale_writer_cannot_inject_into_reused_epoch_number() {
        let b = MemoryBackend::new();
        let w1 = b.begin_epoch(3).unwrap();
        w1.write_pages(&[(0, &[9])]).unwrap();
        w1.abort().unwrap();
        // Same epoch number, fresh session: the stale writer must bounce.
        let w2 = b.begin_epoch(3).unwrap();
        assert!(w1.write_pages(&[(1, &[8])]).is_err(), "stale writer");
        w2.write_pages(&[(2, &[7])]).unwrap();
        w2.finish().unwrap();
        assert_eq!(b.epoch_records(3).unwrap(), vec![(2, vec![7])]);
    }

    #[test]
    fn default_compact_is_latest_wins() {
        use crate::backend::{ChainEntry, EpochKind};
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1]), (1, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2]), (2, vec![2])]).unwrap();
        write_epoch(&b, 3, vec![(0, vec![3])]).unwrap();
        let stats = b.compact(2).unwrap();
        assert_eq!((stats.from, stats.into), (1, 2));
        assert_eq!(stats.segments_removed, 2);
        assert_eq!(b.epochs().unwrap(), vec![2, 3], "epoch 3 untouched");
        assert_eq!(
            b.chain().unwrap(),
            vec![
                ChainEntry {
                    epoch: 2,
                    kind: EpochKind::Full
                },
                ChainEntry {
                    epoch: 3,
                    kind: EpochKind::Delta
                }
            ]
        );
        let mut seen = Vec::new();
        b.read_epoch(2, &mut |p, d| seen.push((p, d[0]))).unwrap();
        assert_eq!(seen, vec![(0, 1), (1, 2), (2, 2)]);
        // Epoch numbers below the fold stay burned.
        assert!(b.begin_epoch(3).is_err());
        write_epoch(&b, 4, vec![(9, vec![4])]).unwrap();
    }

    #[test]
    fn remove_epoch_burns_the_number() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
        b.remove_epoch(1).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![2]);
        assert!(b.remove_epoch(1).is_err());
        assert!(b.begin_epoch(1).is_err(), "retired number not reusable");
    }

    #[test]
    fn blobs_round_trip_and_overwrite() {
        let b = MemoryBackend::new();
        assert_eq!(b.get_blob("layout").unwrap(), None);
        b.put_blob("layout", b"v1").unwrap();
        b.put_blob("layout", b"v2").unwrap();
        assert_eq!(b.get_blob("layout").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn shared_handles_observe_each_other() {
        let (writer, reader) = MemoryBackend::shared();
        write_epoch(&writer, 1, vec![(7, vec![7, 7])]).unwrap();
        assert_eq!(reader.epoch_records(1).unwrap(), vec![(7, vec![7, 7])]);
    }

    #[test]
    fn at_rest_corruption_is_detected_and_rewrite_heals() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1; 32]), (1, vec![2; 32])]).unwrap();
        b.corrupt_stored_page(1, 1, 5).unwrap();
        // Streaming and random-access reads both refuse the rotten page...
        assert_eq!(
            b.read_epoch(1, &mut |_, _| {}).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert_eq!(
            b.read_page_at(1, 1).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // ...while the healthy page still serves.
        assert_eq!(b.read_page_at(1, 0).unwrap().unwrap(), vec![1; 32]);
        // verify_epoch localises the damage instead of erroring.
        let report = b.verify_epoch(1).unwrap();
        assert_eq!(report.corrupt_pages, vec![1]);
        assert_eq!(report.records, 1, "only the clean record verified");
        // A rewrite with healed bytes restores full health in place.
        b.rewrite_epoch(1, &[(0, vec![1; 32]), (1, vec![2; 32])])
            .unwrap();
        assert!(b.verify_epoch(1).unwrap().is_clean());
        assert_eq!(b.read_page_at(1, 1).unwrap().unwrap(), vec![2; 32]);
        assert!(
            b.record_meta(1, 1).unwrap().is_some(),
            "meta tracks the rewritten record"
        );
    }
}
