//! At-rest integrity scrubbing: detect → source-select → repair →
//! quarantine.
//!
//! Silent corruption (bitrot, torn blocks below the commit point) is only
//! harmful if it outlives the redundancy that could repair it. The
//! [`Scrubber`] walks the epoch chain *incrementally* — a cursor plus a
//! byte budget per cycle, driven by the existing maintenance worker so no
//! new threads appear — validating every record's CRC and the
//! manifest↔segment agreement via
//! [`StorageBackend::verify_epoch`]
//! without materializing a restore. On damage it asks the backend to
//! repair itself from the best surviving source
//! ([`StorageBackend::repair_epoch`]:
//! a replica member, XOR parity, or another policy level), re-verifies,
//! and only then trusts the epoch again. Epochs with no surviving source
//! are **quarantined**: restores refuse them loudly instead of serving
//! bad bytes, and the set is surfaced in [`IntegrityStats`].

use std::collections::BTreeSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::backend::StorageBackend;

/// What `verify_epoch` found. A clean report has no corrupt pages and no
/// structural findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// The epoch that was verified.
    pub epoch: u64,
    /// Records whose payload decoded and matched its CRC.
    pub records: u64,
    /// Uncompressed payload bytes verified.
    pub bytes: u64,
    /// Page ids whose stored record is damaged (CRC mismatch, bad
    /// encoding, undecodable payload). Parity-flagged ids may appear here
    /// for backends that store parity records inline.
    pub corrupt_pages: Vec<u64>,
    /// Damage not attributable to a single record: bad segment magic,
    /// torn frames, manifest↔segment record-count disagreement. Each
    /// entry is a human-readable description.
    pub structural: Vec<String>,
}

impl VerifyReport {
    /// Fresh (clean) report for `epoch`.
    pub fn new(epoch: u64) -> Self {
        Self {
            epoch,
            ..Self::default()
        }
    }

    /// True when nothing is damaged.
    pub fn is_clean(&self) -> bool {
        self.corrupt_pages.is_empty() && self.structural.is_empty()
    }

    /// Record a damaged page, keeping the list deduplicated.
    pub fn note_corrupt(&mut self, page: u64) {
        if !self.corrupt_pages.contains(&page) {
            self.corrupt_pages.push(page);
        }
    }

    /// Fold another backend's report into this one (replica sets verify
    /// each member and union the damage).
    pub fn merge(&mut self, other: &VerifyReport) {
        for &p in &other.corrupt_pages {
            self.note_corrupt(p);
        }
        self.structural.extend(other.structural.iter().cloned());
        self.records = self.records.max(other.records);
        self.bytes = self.bytes.max(other.bytes);
    }
}

/// What a successful `repair_epoch` did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// The repaired epoch.
    pub epoch: u64,
    /// Pages whose payload was rewritten from a surviving source. Empty
    /// with `rewrote_segment` set means the whole epoch was rewritten and
    /// callers should invalidate every cached page of it.
    pub pages: Vec<u64>,
    /// The entire segment (and its manifest record) was rewritten, not
    /// just individual records patched.
    pub rewrote_segment: bool,
    /// Human-readable description of the surviving source used
    /// (`"replica 1"`, `"parity"`, `"level cold"`, `"manifest recount"`).
    pub source: String,
}

/// Frame-level metadata of one stored record, without its payload.
/// Lets repair paths truncate padded parity reconstructions back to the
/// exact stored length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Uncompressed payload length in bytes.
    pub raw_len: u32,
    /// CRC-64 over the uncompressed payload, as stored in the frame.
    pub crc: u64,
}

/// Pacing knobs for background scrubbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubPolicy {
    /// Scrub at all. Disabled scrubbers never touch the backend and
    /// quarantine nothing.
    pub enabled: bool,
    /// Verified-byte budget per maintenance cycle; at least one epoch is
    /// scrubbed per cycle regardless, so progress never stalls.
    pub bytes_per_cycle: u64,
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            bytes_per_cycle: 8 << 20,
        }
    }
}

impl ScrubPolicy {
    /// A policy that never scrubs.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Builder-style budget override.
    pub fn with_budget(mut self, bytes_per_cycle: u64) -> Self {
        self.bytes_per_cycle = bytes_per_cycle;
        self
    }
}

/// Snapshot of scrubbing activity and epoch health.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Scrub cycles completed.
    pub cycles: u64,
    /// Epoch verifications performed (an epoch re-verified later counts
    /// again).
    pub epochs_verified: u64,
    /// Records whose CRCs matched.
    pub records_verified: u64,
    /// Uncompressed payload bytes verified.
    pub bytes_verified: u64,
    /// Epochs found damaged (before any repair attempt).
    pub corrupt_epochs: u64,
    /// Epochs brought back to a fully-verifying state by repair.
    pub epochs_repaired: u64,
    /// Individual pages rewritten from a surviving source.
    pub pages_repaired: u64,
    /// Repair attempts that failed or left the epoch still damaged.
    pub repair_failures: u64,
    /// Epochs currently quarantined (irreparable; restores refuse them).
    pub epochs_quarantined: u64,
}

#[derive(Debug, Default)]
struct ScrubState {
    /// Next epoch to scrub; the rotation wraps past the newest epoch.
    cursor: u64,
    /// Irreparable epochs. Restores must refuse these.
    quarantined: BTreeSet<u64>,
}

/// Incremental integrity scrubber with quarantine tracking.
///
/// One `Scrubber` instance guards one backend (it holds the cursor and
/// the quarantine set for that chain); the runtime owns it per
/// `PageManager` and shares the same instance with the service's
/// maintenance worker.
#[derive(Debug, Default)]
pub struct Scrubber {
    policy: ScrubPolicy,
    state: Mutex<ScrubState>,
    cycles: AtomicU64,
    epochs_verified: AtomicU64,
    records_verified: AtomicU64,
    bytes_verified: AtomicU64,
    corrupt_epochs: AtomicU64,
    epochs_repaired: AtomicU64,
    pages_repaired: AtomicU64,
    repair_failures: AtomicU64,
}

impl Scrubber {
    /// A scrubber with the given pacing policy.
    pub fn new(policy: ScrubPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The pacing policy this scrubber runs under.
    pub fn policy(&self) -> ScrubPolicy {
        self.policy
    }

    /// True when `epoch` has been quarantined as irreparable.
    pub fn is_quarantined(&self, epoch: u64) -> bool {
        self.state.lock().quarantined.contains(&epoch)
    }

    /// The quarantined epochs, ascending.
    pub fn quarantined(&self) -> Vec<u64> {
        self.state.lock().quarantined.iter().copied().collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IntegrityStats {
        IntegrityStats {
            cycles: self.cycles.load(Ordering::Relaxed),
            epochs_verified: self.epochs_verified.load(Ordering::Relaxed),
            records_verified: self.records_verified.load(Ordering::Relaxed),
            bytes_verified: self.bytes_verified.load(Ordering::Relaxed),
            corrupt_epochs: self.corrupt_epochs.load(Ordering::Relaxed),
            epochs_repaired: self.epochs_repaired.load(Ordering::Relaxed),
            pages_repaired: self.pages_repaired.load(Ordering::Relaxed),
            repair_failures: self.repair_failures.load(Ordering::Relaxed),
            epochs_quarantined: self.state.lock().quarantined.len() as u64,
        }
    }

    /// One paced scrub cycle with no cache to invalidate. Returns the
    /// number of epochs verified.
    pub fn cycle(&self, backend: &dyn StorageBackend) -> io::Result<u64> {
        self.cycle_with(backend, &mut |_, _| {})
    }

    /// One paced scrub cycle: verify epochs starting at the cursor until
    /// the byte budget is spent (at least one epoch per cycle), repairing
    /// and quarantining as needed. `invalidate(epoch, pages)` is called
    /// after a successful repair so the owner can evict stale
    /// [`PageCache`](crate::PageCache) entries — an empty `pages` slice
    /// means the whole epoch was rewritten and every cached page of it is
    /// stale.
    ///
    /// Transient/permanent read errors propagate (the maintenance worker
    /// applies its retry policy); the cursor still advances past the
    /// failing epoch so one bad epoch cannot wedge the rotation. Corrupt
    /// findings never propagate — they are handled (repaired or
    /// quarantined) right here.
    pub fn cycle_with(
        &self,
        backend: &dyn StorageBackend,
        invalidate: &mut dyn FnMut(u64, &[u64]),
    ) -> io::Result<u64> {
        if !self.policy.enabled {
            return Ok(0);
        }
        let epochs = backend.epochs()?;
        {
            // Retired epochs leave quarantine: there is nothing left to
            // serve, so nothing left to refuse.
            let mut st = self.state.lock();
            st.quarantined.retain(|e| epochs.binary_search(e).is_ok());
        }
        self.cycles.fetch_add(1, Ordering::Relaxed);
        if epochs.is_empty() {
            return Ok(0);
        }
        let start = self.state.lock().cursor;
        let split = epochs.partition_point(|&e| e < start);
        let rotation = epochs[split..].iter().chain(epochs[..split].iter());
        let budget = self.policy.bytes_per_cycle.max(1);
        let mut spent = 0u64;
        let mut scrubbed = 0u64;
        for &epoch in rotation {
            self.state.lock().cursor = epoch + 1;
            let bytes = self.scrub_epoch(backend, epoch, invalidate)?;
            scrubbed += 1;
            spent += bytes.max(1);
            if spent >= budget {
                break;
            }
        }
        Ok(scrubbed)
    }

    /// Scrub every epoch the backend lists right now, regardless of the
    /// byte budget (tests and explicit "verify everything" calls).
    pub fn full_pass_with(
        &self,
        backend: &dyn StorageBackend,
        invalidate: &mut dyn FnMut(u64, &[u64]),
    ) -> io::Result<u64> {
        if !self.policy.enabled {
            return Ok(0);
        }
        let epochs = backend.epochs()?;
        {
            let mut st = self.state.lock();
            st.quarantined.retain(|e| epochs.binary_search(e).is_ok());
        }
        self.cycles.fetch_add(1, Ordering::Relaxed);
        let mut scrubbed = 0u64;
        for &epoch in &epochs {
            self.state.lock().cursor = epoch + 1;
            self.scrub_epoch(backend, epoch, invalidate)?;
            scrubbed += 1;
        }
        Ok(scrubbed)
    }

    /// [`Scrubber::full_pass_with`] without cache invalidation.
    pub fn full_pass(&self, backend: &dyn StorageBackend) -> io::Result<u64> {
        self.full_pass_with(backend, &mut |_, _| {})
    }

    /// Verify one epoch, repairing or quarantining on damage. Returns the
    /// bytes verified (budget accounting).
    fn scrub_epoch(
        &self,
        backend: &dyn StorageBackend,
        epoch: u64,
        invalidate: &mut dyn FnMut(u64, &[u64]),
    ) -> io::Result<u64> {
        let report = match backend.verify_epoch(epoch) {
            Ok(r) => r,
            // Retired between the listing and the walk: nothing to scrub.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        self.epochs_verified.fetch_add(1, Ordering::Relaxed);
        self.records_verified
            .fetch_add(report.records, Ordering::Relaxed);
        self.bytes_verified
            .fetch_add(report.bytes, Ordering::Relaxed);
        if report.is_clean() {
            // Healthy (possibly healed by an external rewrite): lift any
            // stale quarantine.
            self.state.lock().quarantined.remove(&epoch);
            return Ok(report.bytes);
        }
        self.corrupt_epochs.fetch_add(1, Ordering::Relaxed);
        let healed = match backend.repair_epoch(epoch) {
            Ok(rep) => match backend.verify_epoch(epoch) {
                // Trust but verify: the repair only counts if the epoch
                // verifies clean afterwards.
                Ok(after) if after.is_clean() => Some(rep),
                _ => None,
            },
            Err(_) => None,
        };
        match healed {
            Some(rep) => {
                self.epochs_repaired.fetch_add(1, Ordering::Relaxed);
                self.pages_repaired
                    .fetch_add(rep.pages.len() as u64, Ordering::Relaxed);
                invalidate(epoch, &rep.pages);
                self.state.lock().quarantined.remove(&epoch);
            }
            None => {
                self.repair_failures.fetch_add(1, Ordering::Relaxed);
                self.state.lock().quarantined.insert(epoch);
            }
        }
        Ok(report.bytes)
    }
}

/// The error restores raise for a quarantined epoch. Centralised so every
/// restore path fails with the same loud, grep-able message.
pub fn quarantined_error(epoch: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("epoch {epoch} is quarantined: irreparable at-rest corruption"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::memory::MemoryBackend;

    #[test]
    fn clean_chain_scrubs_clean() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1; 64]), (1, vec![2; 64])]).unwrap();
        write_epoch(&b, 2, vec![(0, vec![3; 64])]).unwrap();
        let s = Scrubber::new(ScrubPolicy::default());
        assert_eq!(s.full_pass(&b).unwrap(), 2);
        let st = s.stats();
        assert_eq!(st.epochs_verified, 2);
        assert_eq!(st.records_verified, 3);
        assert_eq!(st.corrupt_epochs, 0);
        assert_eq!(st.epochs_quarantined, 0);
        assert!(st.bytes_verified >= 3 * 64);
    }

    #[test]
    fn budget_paces_the_rotation_but_always_progresses() {
        let b = MemoryBackend::new();
        for e in 1..=4 {
            write_epoch(&b, e, vec![(0, vec![e as u8; 128])]).unwrap();
        }
        // Budget smaller than one epoch: exactly one epoch per cycle, and
        // four cycles complete the rotation.
        let s = Scrubber::new(ScrubPolicy::default().with_budget(1));
        for _ in 0..4 {
            assert_eq!(s.cycle(&b).unwrap(), 1);
        }
        assert_eq!(s.stats().epochs_verified, 4, "cursor rotated the chain");
        // The fifth cycle wraps around to the oldest epoch again.
        assert_eq!(s.cycle(&b).unwrap(), 1);
        assert_eq!(s.stats().epochs_verified, 5);
    }

    #[test]
    fn irreparable_corruption_is_quarantined_and_lifted_on_retire() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![9; 64])]).unwrap();
        write_epoch(&b, 2, vec![(0, vec![8; 64])]).unwrap();
        b.corrupt_stored_page(1, 0, 3).unwrap();
        let s = Scrubber::new(ScrubPolicy::default());
        s.full_pass(&b).unwrap();
        assert!(s.is_quarantined(1), "no redundant source: quarantined");
        assert!(!s.is_quarantined(2));
        let st = s.stats();
        assert_eq!(st.corrupt_epochs, 1);
        assert_eq!(st.repair_failures, 1);
        assert_eq!(st.epochs_quarantined, 1);
        // Retiring the epoch clears the quarantine entry.
        b.remove_epoch(1).unwrap();
        s.cycle(&b).unwrap();
        assert!(!s.is_quarantined(1));
        assert_eq!(s.stats().epochs_quarantined, 0);
    }

    #[test]
    fn repair_invalidates_stale_page_cache_entries() {
        use crate::cache::PageCache;
        use crate::replicate::ReplicatedBackend;
        use std::sync::Arc;

        let m0 = MemoryBackend::new();
        let m1 = MemoryBackend::new();
        let b = ReplicatedBackend::new(vec![Box::new(m0.clone()), Box::new(m1.clone())]);
        write_epoch(&b, 1, vec![(0, vec![7; 64]), (1, vec![8; 64])]).unwrap();
        write_epoch(&b, 2, vec![(0, vec![9; 64])]).unwrap();
        m0.corrupt_stored_page(1, 0, 5).unwrap();

        // A restore storm cached pages of both epochs before the rot was
        // found; the repair must evict exactly the repaired epoch's
        // entries (pages unknown ⇒ whole-namespace invalidation) so no
        // reader can keep serving bytes that disagree with disk.
        let cache = PageCache::new(1 << 20);
        cache.insert(1, 0, Arc::from(vec![7u8; 64].into_boxed_slice()));
        cache.insert(1, 1, Arc::from(vec![8u8; 64].into_boxed_slice()));
        cache.insert(2, 0, Arc::from(vec![9u8; 64].into_boxed_slice()));

        let s = Scrubber::new(ScrubPolicy::default());
        s.full_pass_with(&b, &mut |epoch, pages| {
            if pages.is_empty() {
                cache.remove_ns(epoch);
            } else {
                for &p in pages {
                    cache.remove(epoch, p);
                }
            }
        })
        .unwrap();

        assert_eq!(s.stats().epochs_repaired, 1);
        assert!(cache.get(1, 0).is_none(), "repaired page evicted");
        assert!(
            cache.get(2, 0).is_some(),
            "untouched epoch keeps its cache entries"
        );
    }

    #[test]
    fn disabled_scrubber_is_inert() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1; 16])]).unwrap();
        b.corrupt_stored_page(1, 0, 0).unwrap();
        let s = Scrubber::new(ScrubPolicy::disabled());
        assert_eq!(s.cycle(&b).unwrap(), 0);
        assert_eq!(s.full_pass(&b).unwrap(), 0);
        assert_eq!(s.stats(), IntegrityStats::default());
        assert!(!s.is_quarantined(1));
    }
}
