//! Bandwidth/latency throttling wrapper.
//!
//! The paper's single-node experiments write checkpoints to a ~55 MB/s SATA
//! disk (Grid'5000 Rennes nodes); today's NVMe laptops are 50× faster, which
//! would make the asynchronous-checkpointing dynamics invisible. Wrapping
//! any backend in [`ThrottledBackend`] restores the paper's storage speed:
//! each page write pays a fixed per-operation latency plus `len/bandwidth`,
//! modelled as a rolling deadline so bursts queue exactly like they would on
//! a device with those parameters.

use std::io;
use std::time::{Duration, Instant};

use crate::backend::StorageBackend;

/// Wraps a backend, delaying writes to emulate a slower device.
#[derive(Debug)]
pub struct ThrottledBackend<B> {
    inner: B,
    bytes_per_sec: f64,
    per_op_latency: Duration,
    /// The emulated device's "busy until" time.
    cursor: Instant,
    /// Total time spent sleeping (diagnostics).
    throttled: Duration,
    /// Minimum debt before actually sleeping. OS sleeps have ~50 µs floor
    /// and scheduler slop; accumulating sub-quantum costs and paying them in
    /// bursts keeps the *average* rate accurate even when per-page costs are
    /// microseconds.
    quantum: Duration,
}

impl<B: StorageBackend> ThrottledBackend<B> {
    /// Emulate a device sustaining `bytes_per_sec` with `per_op_latency`
    /// setup cost per write.
    pub fn new(inner: B, bytes_per_sec: f64, per_op_latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Self {
            inner,
            bytes_per_sec,
            per_op_latency,
            cursor: Instant::now(),
            throttled: Duration::ZERO,
            quantum: Duration::from_millis(1),
        }
    }

    /// Convenience: the paper's 55 MB/s local SATA disk.
    pub fn sata_2013(inner: B) -> Self {
        Self::new(inner, 55.0 * 1024.0 * 1024.0, Duration::from_micros(50))
    }

    /// Total time spent waiting on the emulated device.
    pub fn throttled_time(&self) -> Duration {
        self.throttled
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn pay(&mut self, bytes: usize) {
        let cost = self.per_op_latency
            + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let now = Instant::now();
        self.cursor = self.cursor.max(now) + cost;
        if self.cursor > now + self.quantum {
            let wait = self.cursor - now;
            self.throttled += wait;
            std::thread::sleep(wait);
        }
    }
}

impl<B: StorageBackend> StorageBackend for ThrottledBackend<B> {
    fn begin_epoch(&mut self, epoch: u64) -> io::Result<()> {
        self.inner.begin_epoch(epoch)
    }

    fn write_page(&mut self, page: u64, data: &[u8]) -> io::Result<()> {
        self.pay(data.len());
        self.inner.write_page(page, data)
    }

    fn finish_epoch(&mut self) -> io::Result<()> {
        self.inner.finish_epoch()
    }

    fn abort_epoch(&mut self) -> io::Result<()> {
        self.inner.abort_epoch()
    }

    fn put_blob(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get_blob(name)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.inner.epochs()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.inner.read_epoch(epoch, visit)
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;

    #[test]
    fn enforces_configured_bandwidth() {
        // 1 MiB/s, no per-op latency; 64 KiB should take ≥ ~60 ms.
        let mut b = ThrottledBackend::new(
            MemoryBackend::new(),
            1024.0 * 1024.0,
            Duration::ZERO,
        );
        b.begin_epoch(1).unwrap();
        let start = Instant::now();
        for p in 0..16u64 {
            b.write_page(p, &[0u8; 4096]).unwrap();
        }
        b.finish_epoch().unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(55),
            "finished too fast: {elapsed:?}"
        );
        assert!(b.throttled_time() > Duration::ZERO);
    }

    #[test]
    fn per_op_latency_dominates_small_writes() {
        let mut b = ThrottledBackend::new(
            MemoryBackend::new(),
            1e12, // effectively infinite bandwidth
            Duration::from_millis(2),
        );
        b.begin_epoch(1).unwrap();
        let start = Instant::now();
        for p in 0..10u64 {
            b.write_page(p, &[0u8; 8]).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(18));
        b.finish_epoch().unwrap();
    }

    #[test]
    fn passthrough_reads_and_blobs() {
        let mut b = ThrottledBackend::new(MemoryBackend::new(), 1e9, Duration::ZERO);
        b.begin_epoch(1).unwrap();
        b.write_page(5, &[1, 2, 3]).unwrap();
        b.finish_epoch().unwrap();
        b.put_blob("x", b"y").unwrap();
        assert_eq!(b.get_blob("x").unwrap().unwrap(), b"y");
        assert_eq!(b.epochs().unwrap(), vec![1]);
        let mut seen = 0;
        b.read_epoch(1, &mut |p, d| {
            assert_eq!((p, d), (5, &[1u8, 2, 3][..]));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 1);
        assert_eq!(b.bytes_written(), 3);
    }
}
