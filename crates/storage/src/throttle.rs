//! Bandwidth/latency throttling wrapper.
//!
//! The paper's single-node experiments write checkpoints to a ~55 MB/s SATA
//! disk (Grid'5000 Rennes nodes); today's NVMe laptops are 50× faster, which
//! would make the asynchronous-checkpointing dynamics invisible. Wrapping
//! any backend in [`ThrottledBackend`] restores the paper's storage speed:
//! each batch pays a fixed per-record latency plus `len/bandwidth`, paid by
//! sleeping the calling thread.
//!
//! ## Channel model under concurrent streams
//!
//! The configured bandwidth is **per stream**: every committer stream pays
//! its own batches' cost on its own thread, so `S` concurrent streams
//! sustain up to `S ×` the configured rate — the throttle models a storage
//! fabric with independent channels (striped parallel file system, one
//! server per stream), which is exactly the regime where multi-stream
//! flushing pays off. For a strictly serial device, run one stream.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::backend::{EpochWriter, StorageBackend};

#[derive(Debug)]
struct ThrottleParams {
    bytes_per_sec: f64,
    per_op_latency: Duration,
    /// Total time spent sleeping, in nanoseconds (diagnostics).
    throttled_ns: AtomicU64,
    /// Sub-quantum debt carried between small writes, in nanoseconds. OS
    /// sleeps have ~50 µs floor and scheduler slop; accumulating tiny costs
    /// and paying them in bursts keeps the *average* rate accurate even
    /// when per-record costs are microseconds.
    debt_ns: AtomicU64,
    /// Sleep overshoot credit, in nanoseconds: how much longer the OS slept
    /// than requested, deducted from future costs. This restores the
    /// rolling-deadline self-correction of the original (cursor-based)
    /// design — without it every sleep's slop would accumulate and the
    /// emulated device would drift systematically below the configured
    /// bandwidth.
    credit_ns: AtomicU64,
    /// Minimum debt before actually sleeping.
    quantum_ns: u64,
}

impl ThrottleParams {
    /// Charge the calling thread for `records` records of `bytes` payload.
    ///
    /// Costs at or above the sleep quantum are paid directly by the calling
    /// stream — each stream is throttled by exactly what *it* writes, which
    /// is what makes the per-stream channel model (and the streams
    /// ablation's measurements) honest. Only sub-quantum dribbles go into
    /// the shared debt pool, so cross-stream cost transfer is bounded by
    /// one quantum (1 ms).
    fn pay(&self, records: u64, bytes: u64) {
        let cost_ns = self.per_op_latency.as_nanos() as u64 * records
            + (bytes as f64 / self.bytes_per_sec * 1e9) as u64;
        // Deduct overshoot credit from earlier sleeps first.
        let cost_ns = cost_ns - self.take_credit(cost_ns);
        if cost_ns == 0 {
            return;
        }
        if cost_ns >= self.quantum_ns {
            self.sleep_measured(cost_ns);
            return;
        }
        // Tiny write: accumulate, and pay the pooled debt in a burst once
        // it crosses the quantum (OS sleeps have ~50 µs floor and slop;
        // sleeping per tiny write would overshoot wildly). swap(0) claims
        // the whole pool: a racing claimant simply sees 0 and moves on, so
        // no cost is ever double-paid or lost.
        let due = self.debt_ns.fetch_add(cost_ns, Ordering::Relaxed) + cost_ns;
        if due < self.quantum_ns {
            return;
        }
        let claimed = self.debt_ns.swap(0, Ordering::Relaxed);
        if claimed == 0 {
            return;
        }
        self.sleep_measured(claimed);
    }

    /// Sleep `want_ns`, bank whatever the OS overshot as future credit.
    fn sleep_measured(&self, want_ns: u64) {
        let start = std::time::Instant::now();
        std::thread::sleep(Duration::from_nanos(want_ns));
        let actual = start.elapsed().as_nanos() as u64;
        self.throttled_ns.fetch_add(actual, Ordering::Relaxed);
        self.credit_ns
            .fetch_add(actual.saturating_sub(want_ns), Ordering::Relaxed);
    }

    /// Claim up to `max` nanoseconds of banked overshoot credit.
    fn take_credit(&self, max: u64) -> u64 {
        let mut cur = self.credit_ns.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return 0;
            }
            let take = cur.min(max);
            match self.credit_ns.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Wraps a backend, delaying writes to emulate a slower device.
#[derive(Debug)]
pub struct ThrottledBackend<B> {
    inner: B,
    params: Arc<ThrottleParams>,
    /// Read-side pipe, when the emulated device's reads cost too
    /// (degraded restores served by a slow level). `None` = reads free,
    /// the historical behaviour.
    read_params: Option<Arc<ThrottleParams>>,
}

impl<B: StorageBackend> ThrottledBackend<B> {
    /// Emulate a device sustaining `bytes_per_sec` per stream with
    /// `per_op_latency` setup cost per record.
    pub fn new(inner: B, bytes_per_sec: f64, per_op_latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Self {
            inner,
            params: Arc::new(ThrottleParams {
                bytes_per_sec,
                per_op_latency,
                throttled_ns: AtomicU64::new(0),
                debt_ns: AtomicU64::new(0),
                credit_ns: AtomicU64::new(0),
                quantum_ns: 1_000_000, // 1 ms
            }),
            read_params: None,
        }
    }

    /// Throttle the read path too, at `bytes_per_sec` with `per_op_latency`
    /// per bulk read (epoch replays and single-page reads both charge by
    /// the bytes they return). Restores served by this device then pay for
    /// it — the degraded-read half of a slow cold tier.
    pub fn with_read_throttle(mut self, bytes_per_sec: f64, per_op_latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "read bandwidth must be positive");
        self.read_params = Some(Arc::new(ThrottleParams {
            bytes_per_sec,
            per_op_latency,
            throttled_ns: AtomicU64::new(0),
            debt_ns: AtomicU64::new(0),
            credit_ns: AtomicU64::new(0),
            quantum_ns: 1_000_000, // 1 ms
        }));
        self
    }

    fn pay_read(&self, ops: u64, bytes: u64) {
        if let Some(read) = &self.read_params {
            read.pay(ops, bytes);
        }
    }

    /// Convenience: the paper's 55 MB/s local SATA disk.
    pub fn sata_2013(inner: B) -> Self {
        Self::new(inner, 55.0 * 1024.0 * 1024.0, Duration::from_micros(50))
    }

    /// Total time spent waiting on the emulated device (sum across
    /// streams).
    pub fn throttled_time(&self) -> Duration {
        Duration::from_nanos(self.params.throttled_ns.load(Ordering::Relaxed))
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

/// Open-epoch session that charges the throttle before forwarding.
struct ThrottledEpochWriter {
    inner: Box<dyn EpochWriter>,
    params: Arc<ThrottleParams>,
}

impl EpochWriter for ThrottledEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        let bytes: u64 = batch.iter().map(|(_, d)| d.len() as u64).sum();
        self.params.pay(batch.len() as u64, bytes);
        self.inner.write_pages(batch)
    }

    fn finish(&self) -> io::Result<()> {
        self.inner.finish()
    }

    fn abort(&self) -> io::Result<()> {
        self.inner.abort()
    }
}

impl<B: StorageBackend> StorageBackend for ThrottledBackend<B> {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        Ok(Box::new(ThrottledEpochWriter {
            inner: self.inner.begin_epoch(epoch)?,
            params: Arc::clone(&self.params),
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let blob = self.inner.get_blob(name)?;
        if let Some(data) = &blob {
            self.pay_read(1, data.len() as u64);
        }
        Ok(blob)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.inner.epochs()
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        self.inner.high_water()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        let mut bytes = 0u64;
        let mut records = 0u64;
        self.inner.read_epoch(epoch, &mut |page, data| {
            bytes += data.len() as u64;
            records += 1;
            visit(page, data);
        })?;
        self.pay_read(records, bytes);
        Ok(())
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        self.inner.epoch_page_ids(epoch)
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        let hit = self.inner.read_page_at(epoch, page)?;
        if let Some(data) = &hit {
            self.pay_read(1, data.len() as u64);
        }
        Ok(hit)
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        self.inner.delete_blob(name)
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        self.inner.list_blobs()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_stored(&self) -> u64 {
        self.inner.bytes_stored()
    }

    fn chain(&self) -> io::Result<Vec<crate::backend::ChainEntry>> {
        self.inner.chain()
    }

    fn supports_compaction(&self) -> bool {
        self.inner.supports_compaction()
    }

    fn compact(&self, up_to: u64) -> io::Result<crate::backend::CompactionStats> {
        // Maintenance traffic is not throttled: the emulated device models
        // the checkpoint channel, and compaction runs out-of-band.
        self.inner.compact(up_to)
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        self.inner.install_compacted(from, into, records)
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        self.inner.remove_epoch(epoch)
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        self.inner.remove_epochs(epochs)
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        self.inner.drain_one()
    }

    fn drain_backlog(&self) -> usize {
        self.inner.drain_backlog()
    }

    // Integrity maintenance is out-of-band like compaction: the scrubber
    // paces itself with its own byte budget, so the emulated checkpoint
    // channel is not charged for it.

    fn verify_epoch(&self, epoch: u64) -> io::Result<crate::scrub::VerifyReport> {
        self.inner.verify_epoch(epoch)
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        self.inner.rewrite_epoch(epoch, records)
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<crate::scrub::RepairReport> {
        self.inner.repair_epoch(epoch)
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<crate::scrub::RecordMeta>> {
        self.inner.record_meta(epoch, page)
    }

    fn io_stats(&self) -> crate::io::IoStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::time::Instant;

    #[test]
    fn enforces_configured_bandwidth() {
        // 1 MiB/s, no per-op latency; 64 KiB should take ≥ ~60 ms.
        let b = ThrottledBackend::new(MemoryBackend::new(), 1024.0 * 1024.0, Duration::ZERO);
        let w = b.begin_epoch(1).unwrap();
        let start = Instant::now();
        for p in 0..16u64 {
            w.write_pages(&[(p, &[0u8; 4096])]).unwrap();
        }
        w.finish().unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(55),
            "finished too fast: {elapsed:?}"
        );
        assert!(b.throttled_time() > Duration::ZERO);
    }

    #[test]
    fn reads_are_free_unless_a_read_throttle_is_set() {
        let seed = |b: &dyn StorageBackend| {
            let w = b.begin_epoch(1).unwrap();
            for p in 0..16u64 {
                w.write_pages(&[(p, &[7u8; 4096])]).unwrap();
            }
            w.finish().unwrap();
        };
        let replay = |b: &dyn StorageBackend| {
            let start = Instant::now();
            let mut bytes = 0usize;
            b.read_epoch(1, &mut |_, d| bytes += d.len()).unwrap();
            assert_eq!(bytes, 16 * 4096);
            start.elapsed()
        };

        // Default: writes pay, the replay does not.
        let free = ThrottledBackend::new(MemoryBackend::new(), 1e12, Duration::ZERO);
        seed(&free);
        assert!(replay(&free) < Duration::from_millis(20));

        // 1 MiB/s read pipe: the same 64 KiB replay now costs ≥ ~60 ms,
        // and single-page reads are charged by the bytes they return.
        let slow = ThrottledBackend::new(MemoryBackend::new(), 1e12, Duration::ZERO)
            .with_read_throttle(1024.0 * 1024.0, Duration::ZERO);
        seed(&slow);
        assert!(
            replay(&slow) >= Duration::from_millis(55),
            "read throttle not applied"
        );
        let start = Instant::now();
        for p in 0..16u64 {
            assert!(slow.read_page_at(1, p).unwrap().is_some());
        }
        assert!(
            start.elapsed() >= Duration::from_millis(55),
            "page reads must charge the read pipe"
        );
    }

    #[test]
    fn per_op_latency_dominates_small_writes() {
        let b = ThrottledBackend::new(
            MemoryBackend::new(),
            1e12, // effectively infinite bandwidth
            Duration::from_millis(2),
        );
        let w = b.begin_epoch(1).unwrap();
        let start = Instant::now();
        for p in 0..10u64 {
            w.write_pages(&[(p, &[0u8; 8])]).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(18));
        w.finish().unwrap();
    }

    #[test]
    fn concurrent_streams_scale_aggregate_bandwidth() {
        // 4 streams writing 16 KiB each at 1 MiB/s per stream: serial cost
        // would be ≥ 62 ms; concurrent streams overlap their sleeps. The
        // serial run is measured on the same machine so the comparison
        // self-calibrates to scheduler slop (no absolute wall-clock bound
        // to go flaky on loaded CI runners).
        let serial = {
            let b = ThrottledBackend::new(MemoryBackend::new(), 1024.0 * 1024.0, Duration::ZERO);
            let w = b.begin_epoch(1).unwrap();
            let start = Instant::now();
            for p in 0..16u64 {
                w.write_pages(&[(p, &[0u8; 4096])]).unwrap();
            }
            let elapsed = start.elapsed();
            w.finish().unwrap();
            elapsed
        };
        let b = ThrottledBackend::new(MemoryBackend::new(), 1024.0 * 1024.0, Duration::ZERO);
        let w: Arc<dyn EpochWriter> = Arc::from(b.begin_epoch(1).unwrap());
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..4u64 {
                        w.write_pages(&[(t * 4 + i, &[0u8; 4096])]).unwrap();
                    }
                });
            }
        });
        let concurrent = start.elapsed();
        w.finish().unwrap();
        assert!(
            concurrent >= Duration::from_millis(12),
            "each stream still pays its own cost: {concurrent:?}"
        );
        assert!(
            concurrent < serial.mul_f64(0.75),
            "streams must overlap their throttle sleeps: {concurrent:?} vs serial {serial:?}"
        );
    }

    #[test]
    fn passthrough_reads_and_blobs() {
        let b = ThrottledBackend::new(MemoryBackend::new(), 1e9, Duration::ZERO);
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(5, &[1, 2, 3])]).unwrap();
        w.finish().unwrap();
        b.put_blob("x", b"y").unwrap();
        assert_eq!(b.get_blob("x").unwrap().unwrap(), b"y");
        assert_eq!(b.epochs().unwrap(), vec![1]);
        let mut seen = 0;
        b.read_epoch(1, &mut |p, d| {
            assert_eq!((p, d), (5, &[1u8, 2, 3][..]));
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 1);
        assert_eq!(b.bytes_written(), 3);
    }
}
