//! Discard backend: accepts everything, stores nothing. Used by benchmark
//! harnesses that measure checkpointing *dynamics* (wait/CoW behaviour,
//! timings through a throttle) without burning RAM or disk on the payload.

use std::io;

use crate::backend::StorageBackend;

/// A backend that swallows page data, keeping only counts.
#[derive(Debug, Default)]
pub struct NullBackend {
    epochs: Vec<u64>,
    open: Option<u64>,
    pages_written: u64,
    bytes_written: u64,
}

impl NullBackend {
    /// Fresh counter-only backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total pages accepted.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }
}

impl StorageBackend for NullBackend {
    fn begin_epoch(&mut self, epoch: u64) -> io::Result<()> {
        if self.open.is_some() {
            return Err(io::Error::other("previous epoch still open"));
        }
        if self.epochs.last().is_some_and(|&l| epoch <= l) {
            return Err(io::Error::other("epoch not increasing"));
        }
        self.open = Some(epoch);
        Ok(())
    }

    fn write_page(&mut self, _page: u64, data: &[u8]) -> io::Result<()> {
        if self.open.is_none() {
            return Err(io::Error::other("no open epoch"));
        }
        self.pages_written += 1;
        self.bytes_written += data.len() as u64;
        Ok(())
    }

    fn finish_epoch(&mut self) -> io::Result<()> {
        match self.open.take() {
            Some(e) => {
                self.epochs.push(e);
                Ok(())
            }
            None => Err(io::Error::other("no open epoch")),
        }
    }

    fn abort_epoch(&mut self) -> io::Result<()> {
        self.open = None;
        Ok(())
    }

    fn put_blob(&mut self, _name: &str, _data: &[u8]) -> io::Result<()> {
        Ok(())
    }

    fn get_blob(&self, _name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(None)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        Ok(self.epochs.clone())
    }

    fn read_epoch(&self, epoch: u64, _visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("NullBackend discarded epoch {epoch}; nothing to read"),
        ))
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_but_stores_nothing() {
        let mut b = NullBackend::new();
        b.begin_epoch(1).unwrap();
        b.write_page(0, &[0u8; 100]).unwrap();
        b.write_page(1, &[0u8; 50]).unwrap();
        b.finish_epoch().unwrap();
        assert_eq!(b.pages_written(), 2);
        assert_eq!(b.bytes_written(), 150);
        assert_eq!(b.epochs().unwrap(), vec![1]);
        assert!(b.read_epoch(1, &mut |_, _| {}).is_err());
        assert_eq!(b.get_blob("x").unwrap(), None);
    }

    #[test]
    fn epoch_discipline_enforced() {
        let mut b = NullBackend::new();
        assert!(b.write_page(0, &[]).is_err());
        b.begin_epoch(3).unwrap();
        assert!(b.begin_epoch(4).is_err());
        b.abort_epoch().unwrap();
        b.begin_epoch(4).unwrap();
        b.finish_epoch().unwrap();
        assert!(b.begin_epoch(4).is_err(), "must increase");
    }
}
