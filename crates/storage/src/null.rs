//! Discard backend: accepts everything, stores nothing. Used by benchmark
//! harnesses that measure checkpointing *dynamics* (wait/CoW behaviour,
//! timings through a throttle) without burning RAM or disk on the payload.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{EpochWriter, StorageBackend};

#[derive(Debug, Default)]
struct NullShared {
    epochs: Mutex<Vec<u64>>,
    open: Mutex<Option<u64>>,
    pages_written: AtomicU64,
    bytes_written: AtomicU64,
}

/// A backend that swallows page data, keeping only counts.
#[derive(Debug, Default)]
pub struct NullBackend {
    shared: Arc<NullShared>,
}

impl NullBackend {
    /// Fresh counter-only backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total pages accepted.
    pub fn pages_written(&self) -> u64 {
        self.shared.pages_written.load(Ordering::Relaxed)
    }
}

/// Open-epoch session on a [`NullBackend`].
#[derive(Debug)]
struct NullEpochWriter {
    shared: Arc<NullShared>,
    epoch: u64,
    closed: AtomicBool,
}

impl NullEpochWriter {
    fn close(&self, commit: bool) -> io::Result<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Err(io::Error::other("epoch session already closed"));
        }
        let mut open = self.shared.open.lock();
        match open.take() {
            Some(e) => {
                debug_assert_eq!(e, self.epoch);
                if commit {
                    self.shared.epochs.lock().push(e);
                }
                Ok(())
            }
            None => Err(io::Error::other("no open epoch")),
        }
    }
}

impl EpochWriter for NullEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(io::Error::other("epoch session closed"));
        }
        let bytes: u64 = batch.iter().map(|(_, d)| d.len() as u64).sum();
        self.shared
            .pages_written
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.shared
            .bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    fn finish(&self) -> io::Result<()> {
        self.close(true)
    }

    fn abort(&self) -> io::Result<()> {
        self.close(false)
    }
}

impl Drop for NullEpochWriter {
    fn drop(&mut self) {
        if !self.closed.load(Ordering::Acquire) {
            let _ = self.close(false);
        }
    }
}

impl StorageBackend for NullBackend {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        let mut open = self.shared.open.lock();
        if open.is_some() {
            return Err(io::Error::other("previous epoch still open"));
        }
        if self
            .shared
            .epochs
            .lock()
            .last()
            .is_some_and(|&l| epoch <= l)
        {
            return Err(io::Error::other("epoch not increasing"));
        }
        *open = Some(epoch);
        Ok(Box::new(NullEpochWriter {
            shared: Arc::clone(&self.shared),
            epoch,
            closed: AtomicBool::new(false),
        }))
    }

    fn put_blob(&self, _name: &str, _data: &[u8]) -> io::Result<()> {
        Ok(())
    }

    fn get_blob(&self, _name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(None)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        Ok(self.shared.epochs.lock().clone())
    }

    fn read_epoch(&self, epoch: u64, _visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("NullBackend discarded epoch {epoch}; nothing to read"),
        ))
    }

    fn bytes_written(&self) -> u64 {
        self.shared.bytes_written.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_but_stores_nothing() {
        let b = NullBackend::new();
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[0u8; 100]), (1, &[0u8; 50])]).unwrap();
        w.finish().unwrap();
        assert_eq!(b.pages_written(), 2);
        assert_eq!(b.bytes_written(), 150);
        assert_eq!(b.epochs().unwrap(), vec![1]);
        assert!(b.read_epoch(1, &mut |_, _| {}).is_err());
        assert_eq!(b.get_blob("x").unwrap(), None);
    }

    #[test]
    fn epoch_discipline_enforced() {
        let b = NullBackend::new();
        let w = b.begin_epoch(3).unwrap();
        assert!(b.begin_epoch(4).is_err(), "one open epoch at a time");
        w.abort().unwrap();
        b.begin_epoch(4).unwrap().finish().unwrap();
        assert!(b.begin_epoch(4).is_err(), "must increase");
    }
}
