//! Replication across multiple backends (§3.2: local storage "is prone to
//! failures and thus unreliable. However, there are several options to
//! overcome this issue, with data replication on different nodes being the
//! most straight-forward").
//!
//! Every write goes to all replicas; reads are served by the first replica
//! that can satisfy them, falling through on error — so a restore survives
//! the loss of any strict subset of replicas.

use std::io;

use crate::backend::{EpochWriter, StorageBackend};
use crate::scrub::{RecordMeta, RepairReport, VerifyReport};

/// Mirrors every operation across `n` replicas.
pub struct ReplicatedBackend {
    replicas: Vec<Box<dyn StorageBackend>>,
}

impl ReplicatedBackend {
    /// Build from at least one replica.
    pub fn new(replicas: Vec<Box<dyn StorageBackend>>) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        Self { replicas }
    }

    /// Number of replicas.
    pub fn width(&self) -> usize {
        self.replicas.len()
    }

    /// Drop a replica (simulating the loss of a node). Panics if it is the
    /// last one.
    pub fn fail_replica(&mut self, idx: usize) {
        assert!(self.replicas.len() > 1, "cannot lose the last replica");
        self.replicas.remove(idx);
    }

    fn read_fallback<T>(
        &self,
        mut op: impl FnMut(&dyn StorageBackend) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut last_err = None;
        for r in &self.replicas {
            match op(r.as_ref()) {
                Ok(v) => return Ok(v),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no replicas")))
    }
}

/// One epoch session fanned out over every replica's session.
struct ReplicatedEpochWriter {
    writers: Vec<Box<dyn EpochWriter>>,
}

impl EpochWriter for ReplicatedEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        for w in &self.writers {
            w.write_pages(batch)?;
        }
        Ok(())
    }

    fn finish(&self) -> io::Result<()> {
        for w in &self.writers {
            w.finish()?;
        }
        Ok(())
    }

    fn abort(&self) -> io::Result<()> {
        for w in &self.writers {
            w.abort()?;
        }
        Ok(())
    }
}

impl StorageBackend for ReplicatedBackend {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        let writers = self
            .replicas
            .iter()
            .map(|r| r.begin_epoch(epoch))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Box::new(ReplicatedEpochWriter { writers }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        for r in &self.replicas {
            r.put_blob(name, data)?;
        }
        Ok(())
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.read_fallback(|r| r.get_blob(name))
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.read_fallback(|r| r.epochs())
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        // The max across replicas: a replica that got further before a
        // crash still burned its numbers everywhere numbering matters.
        let mut high = None;
        for r in &self.replicas {
            high = high.max(r.high_water()?);
        }
        Ok(high)
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        // Buffer from the first healthy replica, then deliver, so a replica
        // failing mid-stream cannot deliver half an epoch twice.
        let records = self.read_fallback(|r| {
            let mut buf: Vec<(u64, Vec<u8>)> = Vec::new();
            r.read_epoch(epoch, &mut |p, d| buf.push((p, d.to_vec())))?;
            Ok(buf)
        })?;
        for (p, d) in records {
            visit(p, &d);
        }
        Ok(())
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        self.read_fallback(|r| r.epoch_page_ids(epoch))
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        self.read_fallback(|r| r.read_page_at(epoch, page))
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        for r in &self.replicas {
            r.delete_blob(name)?;
        }
        Ok(())
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        self.read_fallback(|r| r.list_blobs())
    }

    fn bytes_written(&self) -> u64 {
        // Logical payload bytes (not multiplied by replication factor).
        self.replicas.first().map_or(0, |r| r.bytes_written())
    }

    fn bytes_stored(&self) -> u64 {
        self.replicas.first().map_or(0, |r| r.bytes_stored())
    }

    fn chain(&self) -> io::Result<Vec<crate::backend::ChainEntry>> {
        self.read_fallback(|r| r.chain())
    }

    fn supports_compaction(&self) -> bool {
        self.replicas.iter().all(|r| r.supports_compaction())
    }

    fn compact(&self, up_to: u64) -> io::Result<crate::backend::CompactionStats> {
        // Every replica folds its own chain; the stats are logical (same on
        // each replica), so report the first's.
        let mut first = None;
        for r in &self.replicas {
            let stats = r.compact(up_to)?;
            first.get_or_insert(stats);
        }
        Ok(first.expect("at least one replica"))
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        for r in &self.replicas {
            r.install_compacted(from, into, records)?;
        }
        Ok(())
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        for r in &self.replicas {
            r.remove_epoch(epoch)?;
        }
        Ok(())
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        for r in &self.replicas {
            r.remove_epochs(epochs)?;
        }
        Ok(())
    }

    fn io_stats(&self) -> crate::io::IoStats {
        // Physical I/O is the sum across replicas: every copy pays its own
        // syscalls and fsyncs, unlike `bytes_written` which stays logical.
        let mut total = crate::io::IoStats::default();
        for r in &self.replicas {
            total = total.merged(r.io_stats());
        }
        total
    }

    fn drain_backlog(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| r.drain_backlog())
            .max()
            .unwrap_or(0)
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        let mut drained = None;
        for r in &self.replicas {
            drained = drained.or(r.drain_one()?);
        }
        Ok(drained)
    }

    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        // Union of every replica's damage: a page rotten on one copy is
        // damage even while another copy still serves it — that surviving
        // copy is exactly what repair needs, so it must be found *before*
        // it rots too.
        let mut report = VerifyReport::new(epoch);
        for r in &self.replicas {
            report.merge(&r.verify_epoch(epoch)?);
        }
        Ok(report)
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        for r in &self.replicas {
            r.rewrite_epoch(epoch, records)?;
        }
        Ok(())
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        let reports = self
            .replicas
            .iter()
            .map(|r| r.verify_epoch(epoch))
            .collect::<io::Result<Vec<_>>>()?;
        if reports.iter().all(VerifyReport::is_clean) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("epoch {epoch} verifies clean; nothing to repair"),
            ));
        }
        // Assemble a healthy image page by page — each page from the first
        // replica that still reads it — so even damage scattered across
        // *different* replicas repairs, as long as every page survives
        // somewhere. Then rewrite only the damaged copies.
        let mut ids: Vec<u64> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for id in self.read_fallback(|r| r.epoch_page_ids(epoch))? {
            if seen.insert(id) {
                ids.push(id);
            }
        }
        let mut image = Vec::with_capacity(ids.len());
        for id in ids {
            let payload = self
                .read_fallback(|r| {
                    r.read_page_at(epoch, id)?.ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("page {id} missing from epoch {epoch}"),
                        )
                    })
                })
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::Unsupported,
                        format!("page {id} of epoch {epoch} survives on no replica: {e}"),
                    )
                })?;
            image.push((id, payload));
        }
        let mut pages = Vec::new();
        for (r, report) in self.replicas.iter().zip(&reports) {
            if report.is_clean() {
                continue;
            }
            r.rewrite_epoch(epoch, &image)?;
            for &p in &report.corrupt_pages {
                if !pages.contains(&p) {
                    pages.push(p);
                }
            }
        }
        Ok(RepairReport {
            epoch,
            pages,
            rewrote_segment: true,
            source: "replica".to_owned(),
        })
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        self.read_fallback(|r| r.record_meta(epoch, page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::memory::MemoryBackend;

    fn two_way() -> (ReplicatedBackend, MemoryBackend, MemoryBackend) {
        let (a, a_view) = MemoryBackend::shared();
        let (b, b_view) = MemoryBackend::shared();
        (
            ReplicatedBackend::new(vec![Box::new(a), Box::new(b)]),
            a_view,
            b_view,
        )
    }

    #[test]
    fn writes_reach_all_replicas() {
        let (r, a, b) = two_way();
        write_epoch(&r, 1, vec![(9, vec![5, 5])]).unwrap();
        assert_eq!(a.epoch_records(1).unwrap(), vec![(9, vec![5, 5])]);
        assert_eq!(b.epoch_records(1).unwrap(), vec![(9, vec![5, 5])]);
    }

    #[test]
    fn abort_propagates_to_all_replicas() {
        let (r, a, b) = two_way();
        let w = r.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[1])]).unwrap();
        w.abort().unwrap();
        assert!(a.epochs().unwrap().is_empty());
        assert!(b.epochs().unwrap().is_empty());
    }

    #[test]
    fn restore_survives_replica_loss() {
        let (mut r, _a, _b) = two_way();
        write_epoch(&r, 1, vec![(1, vec![1])]).unwrap();
        r.fail_replica(0);
        assert_eq!(r.width(), 1);
        let mut seen = Vec::new();
        r.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, vec![(1, vec![1])]);
        assert_eq!(r.epochs().unwrap(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "cannot lose the last replica")]
    fn last_replica_cannot_fail() {
        let (mut r, _a, _b) = two_way();
        r.fail_replica(0);
        r.fail_replica(0);
    }

    #[test]
    fn repair_rewrites_only_the_damaged_copy() {
        let (r, a, b) = two_way();
        let pages: Vec<(u64, Vec<u8>)> = vec![(0, vec![1u8; 16]), (1, vec![2u8; 16])];
        write_epoch(&r, 1, pages.clone()).unwrap();
        a.corrupt_stored_page(1, 0, 5).unwrap();
        let report = r.verify_epoch(1).unwrap();
        assert_eq!(report.corrupt_pages, vec![0], "union sees replica 0's rot");
        let repair = r.repair_epoch(1).unwrap();
        assert_eq!(repair.source, "replica");
        assert_eq!(repair.pages, vec![0]);
        assert!(r.verify_epoch(1).unwrap().is_clean());
        assert_eq!(a.epoch_records(1).unwrap(), pages, "copy healed in place");
        assert_eq!(b.epoch_records(1).unwrap(), pages);
    }

    #[test]
    fn disjoint_damage_across_replicas_still_repairs() {
        let (r, a, b) = two_way();
        write_epoch(&r, 1, vec![(0, vec![1u8; 8]), (1, vec![2u8; 8])]).unwrap();
        a.corrupt_stored_page(1, 0, 0).unwrap();
        b.corrupt_stored_page(1, 1, 0).unwrap();
        r.repair_epoch(1).unwrap();
        assert!(r.verify_epoch(1).unwrap().is_clean());
        let mut seen = Vec::new();
        r.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, vec![(0, vec![1u8; 8]), (1, vec![2u8; 8])]);
    }

    #[test]
    fn page_lost_on_every_replica_is_irreparable() {
        let (r, a, b) = two_way();
        write_epoch(&r, 1, vec![(0, vec![1u8; 8])]).unwrap();
        a.corrupt_stored_page(1, 0, 0).unwrap();
        b.corrupt_stored_page(1, 0, 0).unwrap();
        let err = r.repair_epoch(1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        assert!(err.to_string().contains("survives on no replica"));
    }
}
