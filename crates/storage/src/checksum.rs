//! CRC-64 (ECMA-182 polynomial) for page-record integrity.
//!
//! Checkpoint data that restarts depend on must be verifiable: a silently
//! corrupted page defeats the whole purpose of checkpoint/restart. Every
//! page record in a segment carries a CRC-64 of its payload, checked on
//! restore.
//!
//! Slicing-by-8: the CRC sits on the flush hot path — the committer
//! streams checksum every dirty page before it reaches the vectored
//! writer, so a bytewise table walk (~1 cycle-chained lookup per byte)
//! caps the whole I/O engine well below what the page cache absorbs.
//! Eight derived tables let one iteration fold a full 64-bit word with
//! eight independent lookups the CPU can overlap. Tables are built at
//! first use.

use std::sync::OnceLock;

const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// `tables()[0]` is the classic bytewise table; `tables()[k]` is that
/// table advanced `k` further zero-byte steps, so processing a word is
/// the XOR of one lookup per byte.
fn tables() -> &'static [[u64; 256]; 8] {
    static TABLES: OnceLock<Box<[[u64; 256]; 8]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u64; 256]; 8]);
        for i in 0..256usize {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ POLY
                } else {
                    crc << 1
                };
            }
            t[0][i] = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev << 8) ^ t[0][(prev >> 56) as usize];
            }
        }
        t
    })
}

/// CRC-64/ECMA of `data`.
pub fn crc64(data: &[u8]) -> u64 {
    crc64_update(0, data)
}

/// Continue a CRC-64 computation (for chunked hashing).
pub fn crc64_update(mut crc: u64, data: &[u8]) -> u64 {
    let t = tables();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        // The register is exactly one word wide: fold it into the next
        // eight message bytes, then advance each byte the remaining
        // distance through its own table.
        let x = crc ^ u64::from_be_bytes(chunk.try_into().unwrap());
        crc = t[7][(x >> 56) as usize]
            ^ t[6][(x >> 48) as usize & 0xFF]
            ^ t[5][(x >> 40) as usize & 0xFF]
            ^ t[4][(x >> 32) as usize & 0xFF]
            ^ t[3][(x >> 24) as usize & 0xFF]
            ^ t[2][(x >> 16) as usize & 0xFF]
            ^ t[1][(x >> 8) as usize & 0xFF]
            ^ t[0][x as usize & 0xFF];
    }
    for &b in chunks.remainder() {
        let idx = ((crc >> 56) as u8 ^ b) as usize;
        crc = (crc << 8) ^ t[0][idx];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-slicing implementation, kept as the reference the sliced
    /// one must agree with bit-for-bit.
    fn crc64_bytewise(mut crc: u64, data: &[u8]) -> u64 {
        let t = tables();
        for &b in data {
            let idx = ((crc >> 56) as u8 ^ b) as usize;
            crc = (crc << 8) ^ t[0][idx];
        }
        crc
    }

    #[test]
    fn known_vector() {
        // CRC-64/ECMA-182 of "123456789".
        assert_eq!(crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length_and_phase() {
        // xorshift data, lengths crossing every chunk boundary, updates
        // starting from a non-zero register.
        let mut x = 0x0123_4567_89AB_CDEFu64;
        let data: Vec<u8> = (0..4096 + 7)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for len in (0..64).chain([255, 256, 257, 4095, 4096, 4097, 4103]) {
            let d = &data[..len];
            assert_eq!(crc64(d), crc64_bytewise(0, d), "len {len}");
            assert_eq!(
                crc64_update(0xDEAD_BEEF, d),
                crc64_bytewise(0xDEAD_BEEF, d),
                "len {len} from a mid-stream register"
            );
        }
    }

    #[test]
    fn chunked_equals_whole() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc64(data);
        let mut crc = 0;
        for chunk in data.chunks(7) {
            crc = crc64_update(crc, chunk);
        }
        assert_eq!(crc, whole);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xAAu8; 4096];
        let clean = crc64(&data);
        data[2048] ^= 1;
        assert_ne!(crc64(&data), clean);
    }
}
