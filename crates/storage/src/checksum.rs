//! CRC-64 (ECMA-182 polynomial) for page-record integrity.
//!
//! Checkpoint data that restarts depend on must be verifiable: a silently
//! corrupted page defeats the whole purpose of checkpoint/restart. Every
//! page record in a segment carries a CRC-64 of its payload, checked on
//! restore. Table-driven, one table, built at first use.

use std::sync::OnceLock;

const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

fn table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = (i as u64) << 56;
            for _ in 0..8 {
                crc = if crc & (1 << 63) != 0 {
                    (crc << 1) ^ POLY
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// CRC-64/ECMA of `data`.
pub fn crc64(data: &[u8]) -> u64 {
    crc64_update(0, data)
}

/// Continue a CRC-64 computation (for chunked hashing).
pub fn crc64_update(mut crc: u64, data: &[u8]) -> u64 {
    let t = table();
    for &b in data {
        let idx = ((crc >> 56) as u8 ^ b) as usize;
        crc = (crc << 8) ^ t[idx];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-64/ECMA-182 of "123456789".
        assert_eq!(crc64(b"123456789"), 0x6C40_DF5F_0B49_7347);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn chunked_equals_whole() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc64(data);
        let mut crc = 0;
        for chunk in data.chunks(7) {
            crc = crc64_update(crc, chunk);
        }
        assert_eq!(crc, whole);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xAAu8; 4096];
        let clean = crc64(&data);
        data[2048] ^= 1;
        assert_ne!(crc64(&data), clean);
    }
}
