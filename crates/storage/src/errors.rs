//! Fault taxonomy and bounded retry for storage operations.
//!
//! Every `io::Error` crossing the [`StorageBackend`](crate::StorageBackend)
//! boundary falls into one of three classes, and each class has exactly one
//! correct reaction:
//!
//! | class | meaning | reaction |
//! |---|---|---|
//! | [`FaultClass::Transient`] | the operation may succeed if simply retried (EINTR/EAGAIN-shaped hiccups, timeouts) | bounded exponential backoff via [`RetryPolicy`] |
//! | [`FaultClass::Corrupt`] | the bytes are wrong, not the transport (CRC mismatch, bad magic, torn frame) | repair from a redundant source, else quarantine — **never** retry: re-reading rot yields the same rot |
//! | [`FaultClass::Permanent`] | the operation will keep failing (medium gone, level down, logic error) | surface it; callers keep their suspect/deferred semantics |
//!
//! The backoff schedule is deterministic: jitter comes from a
//! [`SplitMix64`] stream seeded by the policy, so two runs with the same
//! seed sleep the same intervals — fault-injection tests can assert exact
//! attempt counts without flaking.

use std::io;
use std::time::Duration;

use ai_ckpt_core::rng::SplitMix64;

/// What a storage fault means for the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Likely to succeed on retry (interrupted syscall, timeout, busy).
    Transient,
    /// Will keep failing; retrying is wasted work.
    Permanent,
    /// The stored bytes are damaged; the fix is repair, not retry.
    Corrupt,
}

/// Classify an `io::Error` into the taxonomy above.
///
/// The mapping keys off [`io::ErrorKind`]: the whole crate reports
/// integrity damage as `InvalidData` (CRC mismatches, bad magic, torn
/// frames, manifest disagreement) and the injected transient faults use
/// `Interrupted`, so kind is a faithful carrier. Everything unrecognised
/// is conservatively permanent — spurious retries against a dead medium
/// are worse than a prompt error.
pub fn classify(err: &io::Error) -> FaultClass {
    match err.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            FaultClass::Transient
        }
        io::ErrorKind::InvalidData => FaultClass::Corrupt,
        _ => FaultClass::Permanent,
    }
}

/// Construct the canonical transient fault (used by the injection
/// machinery and available to tests).
pub fn transient(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, msg.to_string())
}

/// Bounded exponential backoff with deterministic jitter.
///
/// `run` retries an operation while its error classifies as
/// [`FaultClass::Transient`], sleeping `base * 2^(attempt-1)` (capped at
/// `cap`) scaled by a jitter factor in `[0.5, 1.0)` drawn from a
/// seed-pinned [`SplitMix64`]. Corrupt and permanent faults return
/// immediately — the retry layer never papers over rot or dead media.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
    /// Seed of the jitter stream (same seed ⇒ same schedule).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed: 0xA1_C4_97,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Builder-style seed override (lets a config derive per-component
    /// jitter streams from one root seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff before retry number `retry` (1-based), jittered by
    /// `rng`. Exposed for tests asserting the schedule is bounded.
    pub fn delay(&self, retry: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << (retry - 1).min(16));
        let capped = exp.min(self.cap);
        capped.mul_f64(0.5 + rng.next_f64() * 0.5)
    }

    /// Run `op`, retrying transient faults with backoff. Returns the first
    /// success or the first non-transient error (or the last transient one
    /// once attempts are exhausted).
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        self.run_counted(&mut op).map(|(v, _)| v)
    }

    /// [`RetryPolicy::run`], also reporting how many attempts were made —
    /// fault-injection tests assert exact counts.
    pub fn run_counted<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<(T, u32)> {
        let mut rng = SplitMix64::new(self.seed);
        let attempts = self.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            match op() {
                Ok(v) => return Ok((v, attempt)),
                Err(e) if classify(&e) == FaultClass::Transient && attempt < attempts => {
                    std::thread::sleep(self.delay(attempt, &mut rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn classify_maps_kinds() {
        assert_eq!(classify(&transient("x")), FaultClass::Transient);
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::TimedOut, "t")),
            FaultClass::Transient
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::InvalidData, "crc")),
            FaultClass::Corrupt
        );
        assert_eq!(
            classify(&io::Error::other("injected storage failure")),
            FaultClass::Permanent
        );
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::NotFound, "gone")),
            FaultClass::Permanent
        );
    }

    #[test]
    fn retries_transient_until_success_and_counts_attempts() {
        let p = RetryPolicy {
            base: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let calls = AtomicU32::new(0);
        let (v, attempts) = p
            .run_counted(|| {
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(transient("burst"))
                } else {
                    Ok(42)
                }
            })
            .unwrap();
        assert_eq!((v, attempts), (42, 3));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let calls = AtomicU32::new(0);
        let err = p
            .run(|| -> io::Result<()> {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(transient("forever"))
            })
            .unwrap_err();
        assert_eq!(classify(&err), FaultClass::Transient);
        assert_eq!(calls.load(Ordering::SeqCst), 3, "exactly max_attempts");
    }

    #[test]
    fn permanent_and_corrupt_never_retry() {
        for e in [
            io::Error::other("dead"),
            io::Error::new(io::ErrorKind::InvalidData, "rot"),
        ] {
            let p = RetryPolicy::default();
            let calls = AtomicU32::new(0);
            let kind = e.kind();
            let res = p.run(|| -> io::Result<()> {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(io::Error::new(kind, "again"))
            });
            assert!(res.is_err());
            assert_eq!(calls.load(Ordering::SeqCst), 1, "single attempt");
        }
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 7,
        };
        let mut a = SplitMix64::new(p.seed);
        let mut b = SplitMix64::new(p.seed);
        for retry in 1..8 {
            let d1 = p.delay(retry, &mut a);
            let d2 = p.delay(retry, &mut b);
            assert_eq!(d1, d2, "same seed, same schedule");
            assert!(d1 <= Duration::from_millis(20), "capped");
            assert!(d1 >= Duration::from_micros(500), "at least half the base");
        }
    }
}
