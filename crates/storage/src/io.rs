//! Low-level vectored I/O engine behind the [`crate::file`] backend.
//!
//! The write path built on this module is zero-copy for raw payloads: each
//! page record becomes two iovec entries — a 25-byte frame staged in a
//! reusable aligned buffer and a payload entry pointing *straight at the
//! caller's bytes* (live page memory or a CoW slot) — gathered into one
//! `pwritev(2)` per batch. Nothing passes through a `BufWriter`, so the
//! kernel copies each payload exactly once, from its home into the page
//! cache.
//!
//! Three pieces live here:
//!
//! * [`pwritev_full`] — a positioned vectored write that survives partial
//!   writes, `EINTR` and `IOV_MAX` chunking, the way `write_all` does for
//!   plain writes;
//! * [`AlignedBuf`] — a reusable page-aligned growable buffer for staging
//!   record frames and compressed payloads (reused across batches, so the
//!   steady state allocates nothing);
//! * [`IoCounters`] / [`IoStats`] — syscall-level accounting (vectored
//!   writes, fsyncs, manifest append coalescing, bytes per syscall) that
//!   backends surface through `StorageBackend::io_stats` and the runtime
//!   re-exports in its `RuntimeStats`.

use std::alloc::{self, Layout};
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

/// Alignment of [`AlignedBuf`] allocations: one 4 KiB page, the natural
/// unit for page-cache-friendly staging (and a hard requirement if the
/// backend ever opens segments with `O_DIRECT`).
pub const BUF_ALIGN: usize = 4096;

/// Write *all* of `iov` to `file` at `offset` with positioned vectored
/// writes, retrying on `EINTR` and short writes and chunking at `IOV_MAX`.
/// Entries are consumed (and mutated on partial progress) front to back.
/// Returns the total byte count written.
///
/// Positioned writes make a failed call self-healing: the caller's logical
/// offset only advances on success, so a torn tail left by a partial write
/// is overwritten by the next attempt (and excised by the final
/// `set_len` at commit time).
pub fn pwritev_full(
    file: &File,
    iov: &mut [libc::iovec],
    offset: u64,
    counters: &IoCounters,
) -> io::Result<u64> {
    let fd = file.as_raw_fd();
    let total: u64 = iov.iter().map(|v| v.iov_len as u64).sum();
    let mut written = 0u64;
    let mut idx = 0usize;
    while written < total {
        // Skip exhausted (and any zero-length) entries.
        while idx < iov.len() && iov[idx].iov_len == 0 {
            idx += 1;
        }
        let cnt = (iov.len() - idx).min(libc::IOV_MAX as usize);
        let n = unsafe {
            libc::pwritev(
                fd,
                iov[idx..].as_ptr(),
                cnt as libc::c_int,
                (offset + written) as libc::off_t,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "pwritev returned zero",
            ));
        }
        counters.vectored_writes.fetch_add(1, Ordering::Relaxed);
        counters
            .write_syscall_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
        written += n as u64;
        // Advance the iovec window past what the kernel consumed.
        let mut rem = n as usize;
        while idx < iov.len() && rem >= iov[idx].iov_len {
            rem -= iov[idx].iov_len;
            idx += 1;
        }
        if rem > 0 {
            iov[idx].iov_base = unsafe { (iov[idx].iov_base as *mut u8).add(rem) } as *mut _;
            iov[idx].iov_len -= rem;
        }
    }
    Ok(total)
}

/// A growable byte buffer whose allocation is always [`BUF_ALIGN`]-aligned.
///
/// Used as reusable staging for record frames and compressed payloads:
/// `clear` keeps the allocation, so after warm-up a stream writer stages
/// every batch into the same memory. Growth preserves contents but may
/// move the allocation — callers therefore record *offsets* during a
/// staging pass and materialise pointers only once the pass is complete.
#[derive(Debug)]
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    cap: usize,
    len: usize,
}

// SAFETY: the buffer owns its allocation exclusively; &mut access is the
// only way to mutate it.
unsafe impl Send for AlignedBuf {}

impl Default for AlignedBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl AlignedBuf {
    /// An empty buffer; allocates nothing until first use.
    pub fn new() -> Self {
        Self {
            ptr: NonNull::dangling(),
            cap: 0,
            len: 0,
        }
    }

    /// Bytes currently staged.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Base pointer of the staged bytes (valid until the next growth).
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr.as_ptr()
    }

    /// The staged bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `len <= cap` bytes are initialised.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn grow_to(&mut self, need: usize) {
        let new_cap = need.next_multiple_of(BUF_ALIGN).max(self.cap * 2);
        let new_layout = Layout::from_size_align(new_cap, BUF_ALIGN).expect("buffer too large");
        // SAFETY: fresh allocation; old contents copied then freed.
        unsafe {
            let new_ptr = alloc::alloc(new_layout);
            let Some(new_ptr) = NonNull::new(new_ptr) else {
                alloc::handle_alloc_error(new_layout);
            };
            if self.cap != 0 {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                alloc::dealloc(
                    self.ptr.as_ptr(),
                    Layout::from_size_align_unchecked(self.cap, BUF_ALIGN),
                );
            }
            self.ptr = new_ptr;
            self.cap = new_cap;
        }
    }

    /// Append `bytes`, growing (amortised) as needed. Returns the offset
    /// the bytes were staged at, stable across later growth.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) -> usize {
        let at = self.len;
        let need = self.len + bytes.len();
        if need > self.cap {
            self.grow_to(need);
        }
        // SAFETY: capacity was just ensured; regions cannot overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr.as_ptr().add(at), bytes.len());
        }
        self.len = need;
        at
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.cap != 0 {
            // SAFETY: allocated with this exact layout in `grow_to`.
            unsafe {
                alloc::dealloc(
                    self.ptr.as_ptr(),
                    Layout::from_size_align_unchecked(self.cap, BUF_ALIGN),
                );
            }
        }
    }
}

/// Shared atomic syscall accounting for one backend (see [`IoStats`]).
#[derive(Debug, Default)]
pub struct IoCounters {
    /// `pwritev` calls issued by the segment write path.
    pub vectored_writes: AtomicU64,
    /// Bytes pushed through those calls (frames + payloads).
    pub write_syscall_bytes: AtomicU64,
    /// `fsync` calls on segment/shard files (group commit: one per shard
    /// per epoch, none on the write hot path).
    pub segment_fsyncs: AtomicU64,
    /// Manifest records appended.
    pub manifest_appends: AtomicU64,
    /// `fsync` calls paid for those appends; batched appends commit many
    /// records under one fsync, so this lags `manifest_appends`.
    pub manifest_fsyncs: AtomicU64,
    /// Directory `fsync` calls (durability points after renames/unlinks of
    /// blobs and compacted segments).
    pub dir_fsyncs: AtomicU64,
    /// Single-page random reads served by the demand-paged restore path
    /// (`read_page_at`). One count per record actually fetched from disk —
    /// cache hits upstream do not reach this counter.
    pub page_reads: AtomicU64,
}

impl IoCounters {
    /// Consistent-enough snapshot for diagnostics.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            vectored_writes: self.vectored_writes.load(Ordering::Relaxed),
            write_syscall_bytes: self.write_syscall_bytes.load(Ordering::Relaxed),
            segment_fsyncs: self.segment_fsyncs.load(Ordering::Relaxed),
            manifest_appends: self.manifest_appends.load(Ordering::Relaxed),
            manifest_fsyncs: self.manifest_fsyncs.load(Ordering::Relaxed),
            dir_fsyncs: self.dir_fsyncs.load(Ordering::Relaxed),
            page_reads: self.page_reads.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a backend's syscall-level I/O accounting.
///
/// Wrappers (tiering, replication) sum the stats of their children; the
/// runtime surfaces the backend's snapshot in `RuntimeStats::io`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Vectored (`pwritev`) segment writes issued.
    pub vectored_writes: u64,
    /// Bytes written through them (framing + payload).
    pub write_syscall_bytes: u64,
    /// Segment/shard `fsync` calls (≈ one per stream shard per epoch).
    pub segment_fsyncs: u64,
    /// Manifest records appended.
    pub manifest_appends: u64,
    /// Manifest `fsync` calls paid for those appends.
    pub manifest_fsyncs: u64,
    /// Directory `fsync` calls after blob/segment renames and unlinks.
    pub dir_fsyncs: u64,
    /// Single-page random reads served by `read_page_at`.
    pub page_reads: u64,
}

impl IoStats {
    /// Manifest records that rode along on another record's fsync — the
    /// savings from batched (`append_batch`) commits.
    pub fn coalesced_appends(&self) -> u64 {
        self.manifest_appends.saturating_sub(self.manifest_fsyncs)
    }

    /// Mean payload-carrying bytes per vectored write syscall.
    pub fn bytes_per_syscall(&self) -> u64 {
        self.write_syscall_bytes / self.vectored_writes.max(1)
    }

    /// Field-wise sum (wrappers aggregating children).
    pub fn merged(self, other: IoStats) -> IoStats {
        IoStats {
            vectored_writes: self.vectored_writes + other.vectored_writes,
            write_syscall_bytes: self.write_syscall_bytes + other.write_syscall_bytes,
            segment_fsyncs: self.segment_fsyncs + other.segment_fsyncs,
            manifest_appends: self.manifest_appends + other.manifest_appends,
            manifest_fsyncs: self.manifest_fsyncs + other.manifest_fsyncs,
            dir_fsyncs: self.dir_fsyncs + other.dir_fsyncs,
            page_reads: self.page_reads + other.page_reads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn tmpfile(tag: &str) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "aickpt-io-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        (path, file)
    }

    fn iov(parts: &[&[u8]]) -> Vec<libc::iovec> {
        parts
            .iter()
            .map(|p| libc::iovec {
                iov_base: p.as_ptr() as *mut _,
                iov_len: p.len(),
            })
            .collect()
    }

    #[test]
    fn pwritev_gathers_all_parts_at_offset() {
        let (path, file) = tmpfile("gather");
        let counters = IoCounters::default();
        let parts: [&[u8]; 4] = [b"head", b"", b"-mid-", b"tail"];
        let mut v = iov(&parts);
        let n = pwritev_full(&file, &mut v, 3, &counters).unwrap();
        assert_eq!(n, 13);
        let mut got = Vec::new();
        File::open(&path).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(&got, b"\0\0\0head-mid-tail");
        let stats = counters.snapshot();
        assert_eq!(stats.write_syscall_bytes, 13);
        assert!(stats.vectored_writes >= 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pwritev_chunks_past_iov_max() {
        let (path, file) = tmpfile("chunks");
        let counters = IoCounters::default();
        let one = [0xABu8; 3];
        let parts: Vec<&[u8]> = (0..2 * libc::IOV_MAX as usize + 7)
            .map(|_| &one[..])
            .collect();
        let mut v = iov(&parts);
        let total = pwritev_full(&file, &mut v, 0, &counters).unwrap();
        assert_eq!(total, 3 * parts.len() as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            total,
            "every chunk landed"
        );
        assert!(
            counters.snapshot().vectored_writes >= 3,
            "at least one syscall per IOV_MAX chunk"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_iovec_writes_nothing() {
        let (path, file) = tmpfile("empty");
        let counters = IoCounters::default();
        assert_eq!(pwritev_full(&file, &mut [], 0, &counters).unwrap(), 0);
        assert_eq!(counters.snapshot().vectored_writes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aligned_buf_reuses_and_stays_aligned() {
        let mut b = AlignedBuf::new();
        assert!(b.is_empty());
        let at0 = b.extend_from_slice(b"hello");
        let at1 = b.extend_from_slice(&[7u8; 8192]);
        assert_eq!((at0, at1), (0, 5));
        assert_eq!(b.len(), 5 + 8192);
        assert_eq!(b.as_ptr() as usize % BUF_ALIGN, 0);
        assert_eq!(&b.as_slice()[..5], b"hello");
        assert_eq!(b.as_slice()[5..], [7u8; 8192]);
        let ptr = b.as_ptr();
        b.clear();
        b.extend_from_slice(b"again");
        assert_eq!(b.as_ptr(), ptr, "clear keeps the allocation");
        assert_eq!(b.as_slice(), b"again");
    }

    #[test]
    fn io_stats_derived_metrics() {
        let s = IoStats {
            vectored_writes: 4,
            write_syscall_bytes: 4096,
            segment_fsyncs: 2,
            manifest_appends: 10,
            manifest_fsyncs: 3,
            dir_fsyncs: 1,
            page_reads: 5,
        };
        assert_eq!(s.coalesced_appends(), 7);
        assert_eq!(s.bytes_per_syscall(), 1024);
        assert_eq!(IoStats::default().bytes_per_syscall(), 0, "no div by zero");
        let sum = s.merged(s);
        assert_eq!(sum.manifest_appends, 20);
        assert_eq!(sum.write_syscall_bytes, 8192);
        assert_eq!(sum.dir_fsyncs, 2);
        assert_eq!(sum.page_reads, 10);
    }
}
