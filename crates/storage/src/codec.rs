//! Per-record payload encodings for `AICKSEG2` segments.
//!
//! The paper's premise is that checkpoint cost is dominated by moving page
//! payloads to storage; VELOC structures exactly this stage as pluggable
//! serialization/compression modules between capture and the storage tiers.
//! This module is that stage for the epoch pipeline: every page record
//! carries an encoding byte, chosen per record, and integrity (CRC-64) is
//! always computed over the *uncompressed* payload so restore verification
//! is independent of the encoding.
//!
//! Encodings:
//!
//! * [`Encoding::Raw`] — payload stored verbatim (always available, always
//!   the fallback when compression does not pay);
//! * [`Encoding::Rle`] — `(run length 1-255, byte)` pairs; optimal for the
//!   constant-fill pages numerical applications produce in bulk (zero
//!   pages, initialized-but-unwritten halos);
//! * [`Encoding::Lz`] — the vendored [`minilz`] LZ77-style block codec for
//!   structured-but-not-constant payloads.
//!
//! [`encode`] never grows a record: it picks the smallest candidate the
//! [`Compression`] mode allows and falls back to `Raw` otherwise, so the
//! worst case over incompressible data is byte-identical to the v1 path.

use std::io;

/// Wire value of a record's payload encoding (one byte in the v2 frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Verbatim payload.
    Raw = 0,
    /// Byte-level run-length encoding.
    Rle = 1,
    /// LZ77-style block codec (vendored `minilz`).
    Lz = 2,
}

impl Encoding {
    /// Parse the wire byte.
    pub fn from_u8(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(Encoding::Raw),
            1 => Ok(Encoding::Rle),
            2 => Ok(Encoding::Lz),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown payload encoding {other}"),
            )),
        }
    }
}

/// Compression policy of a backend's write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Store every record raw (the v1 behaviour, in v2 framing).
    None,
    /// Per record, store the smallest of Raw / RLE / LZ.
    #[default]
    Auto,
}

/// RLE-encode `data` as `(count, byte)` pairs, or `None` when the result
/// would not be smaller than `data` (the caller then keeps raw/LZ).
fn rle_compress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() / 2);
    let mut i = 0;
    while i < data.len() {
        if out.len() + 2 >= data.len() {
            return None; // cannot win any more
        }
        let b = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    (out.len() < data.len()).then_some(out)
}

/// Decode an RLE payload into exactly `raw_len` bytes.
fn rle_decompress(stored: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
    if !stored.len().is_multiple_of(2) {
        return Err(corrupt("odd RLE stream length"));
    }
    let mut out = Vec::with_capacity(raw_len);
    for pair in stored.chunks_exact(2) {
        let (run, b) = (pair[0] as usize, pair[1]);
        if run == 0 || out.len() + run > raw_len {
            return Err(corrupt("RLE run overflows declared length"));
        }
        out.resize(out.len() + run, b);
    }
    if out.len() != raw_len {
        return Err(corrupt("RLE decoded length mismatch"));
    }
    Ok(out)
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Encode one record payload under `mode`. Returns the encoding byte and,
/// for non-`Raw` choices, the owned compressed bytes (`None` payload means
/// "store `data` verbatim" — no copy on the raw path).
pub fn encode(data: &[u8], mode: Compression) -> (Encoding, Option<Vec<u8>>) {
    if mode == Compression::None {
        return (Encoding::Raw, None);
    }
    let mut best: (Encoding, Option<Vec<u8>>) = (Encoding::Raw, None);
    let mut best_len = data.len();
    if let Some(rle) = rle_compress(data) {
        if rle.len() < best_len {
            best_len = rle.len();
            best = (Encoding::Rle, Some(rle));
        }
    }
    // RLE already at < 1/64 of raw means a constant-ish page; LZ cannot
    // meaningfully beat it and is the expensive candidate — skip it.
    if best_len * 64 > data.len() {
        let lz = minilz::compress(data);
        if lz.len() < best_len {
            best = (Encoding::Lz, Some(lz));
        }
    }
    best
}

/// Decode a stored record payload back to its `raw_len` uncompressed bytes.
/// `Raw` borrows nothing — the caller uses the stored bytes directly — so
/// this returns `None` for `Raw` and the owned decoded bytes otherwise.
pub fn decode(enc: Encoding, stored: &[u8], raw_len: usize) -> io::Result<Option<Vec<u8>>> {
    match enc {
        Encoding::Raw => {
            if stored.len() != raw_len {
                return Err(corrupt("raw record length mismatch"));
            }
            Ok(None)
        }
        Encoding::Rle => rle_decompress(stored, raw_len).map(Some),
        Encoding::Lz => minilz::decompress(stored, raw_len)
            .map(Some)
            .map_err(|e| corrupt(&e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], mode: Compression) -> Encoding {
        let (enc, stored) = encode(data, mode);
        let stored = stored.as_deref().unwrap_or(data);
        let decoded = decode(enc, stored, data.len()).unwrap();
        assert_eq!(decoded.as_deref().unwrap_or(stored), data);
        enc
    }

    #[test]
    fn none_mode_is_always_raw() {
        assert_eq!(round_trip(&[7u8; 4096], Compression::None), Encoding::Raw);
        assert_eq!(round_trip(b"", Compression::None), Encoding::Raw);
    }

    #[test]
    fn constant_page_picks_rle() {
        let (enc, stored) = encode(&[0u8; 4096], Compression::Auto);
        assert_eq!(enc, Encoding::Rle);
        let stored = stored.unwrap();
        assert!(stored.len() <= 34, "constant page: {} bytes", stored.len());
        assert_eq!(
            decode(enc, &stored, 4096).unwrap().unwrap(),
            vec![0u8; 4096]
        );
    }

    #[test]
    fn structured_page_picks_lz() {
        let data: Vec<u8> = (0..1024u32).flat_map(|i| (i / 3).to_le_bytes()).collect();
        let (enc, stored) = encode(&data, Compression::Auto);
        assert_eq!(enc, Encoding::Lz);
        assert!(stored.as_ref().unwrap().len() < data.len());
        assert_eq!(
            decode(enc, &stored.unwrap(), data.len()).unwrap().unwrap(),
            data
        );
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..512)
            .map(|_| {
                x = x.wrapping_mul(0xD129_0209_3482_1899).rotate_left(23);
                x as u8
            })
            .collect();
        let (enc, stored) = encode(&data, Compression::Auto);
        assert_eq!(enc, Encoding::Raw);
        assert!(stored.is_none(), "raw never copies");
    }

    #[test]
    fn empty_payload() {
        let (enc, stored) = encode(&[], Compression::Auto);
        assert_eq!(enc, Encoding::Raw);
        assert!(decode(enc, stored.as_deref().unwrap_or(&[]), 0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn corrupt_streams_are_errors() {
        assert!(decode(Encoding::Rle, &[1], 1).is_err(), "odd stream");
        assert!(decode(Encoding::Rle, &[0, 7], 1).is_err(), "zero run");
        assert!(decode(Encoding::Rle, &[5, 7], 3).is_err(), "overflow");
        assert!(decode(Encoding::Raw, &[1, 2], 3).is_err(), "length");
        assert!(decode(Encoding::Lz, &[0xFF, 0x01], 64).is_err(), "lz");
        assert!(Encoding::from_u8(9).is_err());
    }

    /// SplitMix64-driven payload generator covering the shapes checkpoint
    /// pages actually take: constant fills, long runs, structured records,
    /// random noise, and tiny/empty payloads.
    fn arbitrary_payload(rng: &mut ai_ckpt_core::rng::SplitMix64) -> Vec<u8> {
        let len = match rng.next_below(4) {
            0 => rng.next_below(16) as usize,
            1 => 64 + rng.next_below(512) as usize,
            _ => 1024 + rng.next_below(4096) as usize,
        };
        match rng.next_below(4) {
            0 => vec![rng.next_u64() as u8; len],
            1 => {
                // Runs of random bytes and random lengths.
                let mut v = Vec::with_capacity(len);
                while v.len() < len {
                    let run = 1 + rng.next_below(300) as usize;
                    let b = rng.next_u64() as u8;
                    v.extend(std::iter::repeat_n(b, run.min(len - v.len())));
                }
                v
            }
            2 => {
                // Structured: repeating small records with slow counters.
                (0..len)
                    .map(|i| ((i / 9) as u8).wrapping_add((i % 9) as u8 * 31))
                    .collect()
            }
            _ => (0..len).map(|_| rng.next_u64() as u8).collect(),
        }
    }

    #[test]
    fn property_every_encoding_round_trips_arbitrary_payloads() {
        let mut rng = ai_ckpt_core::rng::SplitMix64::new(0x0DEC_0DEC);
        for _ in 0..256 {
            let data = arbitrary_payload(&mut rng);
            // Raw: trivially exact.
            assert!(decode(Encoding::Raw, &data, data.len()).unwrap().is_none());
            // RLE: whenever the encoder produces a stream, it must invert.
            if let Some(rle) = rle_compress(&data) {
                assert!(rle.len() < data.len());
                assert_eq!(rle_decompress(&rle, data.len()).unwrap(), data);
                assert_eq!(
                    decode(Encoding::Rle, &rle, data.len()).unwrap().unwrap(),
                    data
                );
            }
            // LZ: always invertible, never trusted to shrink.
            let lz = minilz::compress(&data);
            assert_eq!(
                decode(Encoding::Lz, &lz, data.len()).unwrap().unwrap(),
                data
            );
            // Auto: picks one of the three and stays exact + never larger.
            let (enc, stored) = encode(&data, Compression::Auto);
            let stored = stored.as_deref().unwrap_or(&data);
            assert!(stored.len() <= data.len(), "auto never grows a record");
            let decoded = decode(enc, stored, data.len()).unwrap();
            assert_eq!(decoded.as_deref().unwrap_or(stored), &data[..]);
        }
    }

    #[test]
    fn property_decode_never_panics_on_corrupt_streams() {
        let mut rng = ai_ckpt_core::rng::SplitMix64::new(0xBAD_C0DE);
        for _ in 0..256 {
            let data = arbitrary_payload(&mut rng);
            let (enc, stored) = encode(&data, Compression::Auto);
            let mut stored = stored.unwrap_or_else(|| data.clone());
            if stored.is_empty() {
                continue;
            }
            // Flip one random byte; decoding must error or produce bytes of
            // the declared length — never panic or over-allocate.
            let at = rng.next_below(stored.len() as u64) as usize;
            stored[at] ^= 1 << rng.next_below(8);
            if let Ok(Some(out)) = decode(enc, &stored, data.len()) {
                assert_eq!(out.len(), data.len());
            }
        }
    }

    #[test]
    fn rle_mixed_runs() {
        let mut data = Vec::new();
        for (run, b) in [(300usize, 1u8), (1, 2), (2, 3), (255, 4), (256, 5)] {
            data.extend(std::iter::repeat_n(b, run));
        }
        let out = rle_compress(&data).unwrap();
        assert_eq!(rle_decompress(&out, data.len()).unwrap(), data);
    }
}
