//! XOR-parity protection for checkpoint segments — a single-erasure code in
//! the spirit of the paper's pointer to its own prior work (§3.2, ref [18]:
//! "More cost-effective solutions based on erasure codes are also possible
//! in order to reduce both performance overhead and storage space
//! requirements").
//!
//! Pages are grouped in write order into groups of `k`; for each full group
//! (and the trailing partial group) one parity record is emitted whose
//! payload is the XOR of the members plus a header listing them. Storage
//! overhead is `1/k` instead of replication's `1×`, and any *single* lost or
//! corrupted page per group can be reconstructed with
//! [`ParityBackend::recover_page`].
//!
//! Parity records are stored through the same backend with the high bit of
//! the page id set; `read_epoch` filters them out so ordinary consumers (the
//! restore path) see only data pages.

use std::io;

use crate::backend::StorageBackend;

/// Page-id flag marking parity records inside the wrapped backend.
pub const PARITY_FLAG: u64 = 1 << 63;

/// Wraps a backend, adding one XOR parity record per `k` data pages.
pub struct ParityBackend<B> {
    inner: B,
    k: usize,
    /// Members of the currently accumulating group.
    group: Vec<u64>,
    /// Running XOR of the group members' payloads.
    xor: Vec<u8>,
    groups_emitted: u64,
}

impl<B: StorageBackend> ParityBackend<B> {
    /// Group size `k` (storage overhead `1/k`). `k >= 2`.
    pub fn new(inner: B, k: usize) -> Self {
        assert!(k >= 2, "parity group needs at least 2 members");
        Self {
            inner,
            k,
            group: Vec::with_capacity(k),
            xor: Vec::new(),
            groups_emitted: 0,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn emit_parity(&mut self) -> io::Result<()> {
        if self.group.is_empty() {
            return Ok(());
        }
        // Payload: [k u32][member ids u64 * k][xor bytes]
        let mut payload = Vec::with_capacity(4 + self.group.len() * 8 + self.xor.len());
        payload.extend_from_slice(&(self.group.len() as u32).to_le_bytes());
        for &m in &self.group {
            payload.extend_from_slice(&m.to_le_bytes());
        }
        payload.extend_from_slice(&self.xor);
        let id = PARITY_FLAG | self.groups_emitted;
        self.groups_emitted += 1;
        self.group.clear();
        self.xor.clear();
        self.inner.write_page(id, &payload)
    }

    /// Reconstruct a lost/corrupt page of a finished epoch from its parity
    /// group. Only works for a single loss per group (XOR code), and
    /// requires page ids to be unique within the epoch — which checkpoint
    /// epochs guarantee (the engine commits each page exactly once per
    /// checkpoint). Duplicate ids inside one group would XOR each other
    /// out.
    pub fn recover_page(&self, epoch: u64, lost: u64) -> io::Result<Vec<u8>> {
        // Pass 1: find the parity group containing `lost`.
        let mut group: Option<(Vec<u64>, Vec<u8>)> = None;
        self.inner.read_epoch(epoch, &mut |id, payload| {
            if id & PARITY_FLAG == 0 || group.is_some() {
                return;
            }
            let k = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
            let mut members = Vec::with_capacity(k);
            for i in 0..k {
                let s = 4 + i * 8;
                members.push(u64::from_le_bytes(payload[s..s + 8].try_into().unwrap()));
            }
            if members.contains(&lost) {
                let xor = payload[4 + k * 8..].to_vec();
                group = Some((members, xor));
            }
        })?;
        let (members, mut acc) = group.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("page {lost} not covered by any parity group in epoch {epoch}"),
            )
        })?;
        // Pass 2: XOR the surviving members back out of the parity.
        self.inner.read_epoch(epoch, &mut |id, payload| {
            if id & PARITY_FLAG != 0 || id == lost || !members.contains(&id) {
                return;
            }
            for (a, b) in acc.iter_mut().zip(payload) {
                *a ^= b;
            }
        })?;
        Ok(acc)
    }
}

impl<B: StorageBackend> StorageBackend for ParityBackend<B> {
    fn begin_epoch(&mut self, epoch: u64) -> io::Result<()> {
        self.group.clear();
        self.xor.clear();
        self.inner.begin_epoch(epoch)
    }

    fn write_page(&mut self, page: u64, data: &[u8]) -> io::Result<()> {
        assert_eq!(page & PARITY_FLAG, 0, "page id collides with parity flag");
        self.inner.write_page(page, data)?;
        if self.xor.len() < data.len() {
            self.xor.resize(data.len(), 0);
        }
        for (a, b) in self.xor.iter_mut().zip(data) {
            *a ^= b;
        }
        self.group.push(page);
        if self.group.len() == self.k {
            self.emit_parity()?;
        }
        Ok(())
    }

    fn finish_epoch(&mut self) -> io::Result<()> {
        self.emit_parity()?; // trailing partial group
        self.inner.finish_epoch()
    }

    fn abort_epoch(&mut self) -> io::Result<()> {
        self.group.clear();
        self.xor.clear();
        self.inner.abort_epoch()
    }

    fn put_blob(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get_blob(name)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.inner.epochs()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.inner.read_epoch(epoch, &mut |id, data| {
            if id & PARITY_FLAG == 0 {
                visit(id, data);
            }
        })
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;

    fn page(v: u8) -> Vec<u8> {
        vec![v; 32]
    }

    #[test]
    fn data_pages_visible_parity_hidden() {
        let mut b = ParityBackend::new(MemoryBackend::new(), 2);
        b.begin_epoch(1).unwrap();
        for p in 0..5u64 {
            b.write_page(p, &page(p as u8)).unwrap();
        }
        b.finish_epoch().unwrap();
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, _| seen.push(p)).unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "parity records filtered");
        // Raw store holds 5 data + 3 parity (2+2+1 grouping).
        assert_eq!(b.inner().epoch_records(1).unwrap().len(), 8);
    }

    #[test]
    fn recovers_any_single_member() {
        let mut b = ParityBackend::new(MemoryBackend::new(), 3);
        b.begin_epoch(1).unwrap();
        for p in 0..7u64 {
            b.write_page(p, &page(p as u8 + 10)).unwrap();
        }
        b.finish_epoch().unwrap();
        for lost in 0..7u64 {
            let recovered = b.recover_page(1, lost).unwrap();
            assert_eq!(
                &recovered[..32],
                &page(lost as u8 + 10)[..],
                "page {lost} reconstructed"
            );
        }
    }

    #[test]
    fn uncovered_page_is_an_error() {
        let mut b = ParityBackend::new(MemoryBackend::new(), 2);
        b.begin_epoch(1).unwrap();
        b.write_page(0, &page(1)).unwrap();
        b.finish_epoch().unwrap();
        assert!(b.recover_page(1, 99).is_err());
    }

    #[test]
    fn variable_sized_members_pad_with_zeros() {
        let mut b = ParityBackend::new(MemoryBackend::new(), 2);
        b.begin_epoch(1).unwrap();
        b.write_page(0, &[0xAA; 8]).unwrap();
        b.write_page(1, &[0x55; 16]).unwrap();
        b.finish_epoch().unwrap();
        let r0 = b.recover_page(1, 0).unwrap();
        assert_eq!(&r0[..8], &[0xAA; 8]);
        let r1 = b.recover_page(1, 1).unwrap();
        assert_eq!(&r1[..16], &[0x55; 16]);
    }
}
