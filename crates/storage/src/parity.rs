//! XOR-parity protection for checkpoint segments — a single-erasure code in
//! the spirit of the paper's pointer to its own prior work (§3.2, ref [18]:
//! "More cost-effective solutions based on erasure codes are also possible
//! in order to reduce both performance overhead and storage space
//! requirements").
//!
//! Pages are grouped in arrival order into groups of `k`; for each full
//! group (and the trailing partial group) one parity record is emitted whose
//! payload is the XOR of the members plus a header listing them. Storage
//! overhead is `1/k` instead of replication's `1×`, and any *single* lost or
//! corrupted page per group can be reconstructed with
//! [`ParityBackend::recover_page`].
//!
//! Parity records are stored through the same backend with the high bit of
//! the page id set; `read_epoch` filters them out so ordinary consumers (the
//! restore path) see only data pages.
//!
//! Under concurrent streams, group membership follows arrival order at the
//! session's accumulator (a mutex serialises the XOR state); which pages
//! share a group is then nondeterministic, but every data page still lands
//! in exactly one group, which is all the recovery invariant needs.

use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{EpochWriter, StorageBackend};

/// Page-id flag marking parity records inside the wrapped backend.
pub const PARITY_FLAG: u64 = 1 << 63;

/// Wraps a backend, adding one XOR parity record per `k` data pages.
pub struct ParityBackend<B> {
    inner: B,
    k: usize,
}

/// Accumulating parity group of one epoch session.
#[derive(Debug, Default)]
struct ParityState {
    /// Members of the currently accumulating group.
    group: Vec<u64>,
    /// Running XOR of the group members' payloads.
    xor: Vec<u8>,
    groups_emitted: u64,
}

impl ParityState {
    /// Build the parity record payload for the current group, if any.
    fn take_parity_record(&mut self) -> Option<(u64, Vec<u8>)> {
        if self.group.is_empty() {
            return None;
        }
        // Payload: [k u32][member ids u64 * k][xor bytes]
        let mut payload = Vec::with_capacity(4 + self.group.len() * 8 + self.xor.len());
        payload.extend_from_slice(&(self.group.len() as u32).to_le_bytes());
        for &m in &self.group {
            payload.extend_from_slice(&m.to_le_bytes());
        }
        payload.extend_from_slice(&self.xor);
        let id = PARITY_FLAG | self.groups_emitted;
        self.groups_emitted += 1;
        self.group.clear();
        self.xor.clear();
        Some((id, payload))
    }
}

impl<B: StorageBackend> ParityBackend<B> {
    /// Group size `k` (storage overhead `1/k`). `k >= 2`.
    pub fn new(inner: B, k: usize) -> Self {
        assert!(k >= 2, "parity group needs at least 2 members");
        Self { inner, k }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Reconstruct a lost/corrupt page of a finished epoch from its parity
    /// group. Only works for a single loss per group (XOR code), and
    /// requires page ids to be unique within the epoch — which checkpoint
    /// epochs guarantee (the engine commits each page exactly once per
    /// checkpoint). Duplicate ids inside one group would XOR each other
    /// out.
    pub fn recover_page(&self, epoch: u64, lost: u64) -> io::Result<Vec<u8>> {
        // Pass 1: find the parity group containing `lost`.
        let mut group: Option<(Vec<u64>, Vec<u8>)> = None;
        self.inner.read_epoch(epoch, &mut |id, payload| {
            if id & PARITY_FLAG == 0 || group.is_some() {
                return;
            }
            let k = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
            let mut members = Vec::with_capacity(k);
            for i in 0..k {
                let s = 4 + i * 8;
                members.push(u64::from_le_bytes(payload[s..s + 8].try_into().unwrap()));
            }
            if members.contains(&lost) {
                let xor = payload[4 + k * 8..].to_vec();
                group = Some((members, xor));
            }
        })?;
        let (members, mut acc) = group.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("page {lost} not covered by any parity group in epoch {epoch}"),
            )
        })?;
        // Pass 2: XOR the surviving members back out of the parity.
        self.inner.read_epoch(epoch, &mut |id, payload| {
            if id & PARITY_FLAG != 0 || id == lost || !members.contains(&id) {
                return;
            }
            for (a, b) in acc.iter_mut().zip(payload) {
                *a ^= b;
            }
        })?;
        Ok(acc)
    }
}

/// Epoch session that interleaves parity records with the data stream.
struct ParityEpochWriter {
    inner: Box<dyn EpochWriter>,
    k: usize,
    state: Arc<Mutex<ParityState>>,
}

impl EpochWriter for ParityEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        for &(page, _) in batch {
            assert_eq!(page & PARITY_FLAG, 0, "page id collides with parity flag");
        }
        self.inner.write_pages(batch)?;
        // Fold the batch into the accumulating group under the state lock;
        // emit full groups' parity records through the inner session.
        let mut parity_records = Vec::new();
        {
            let mut st = self.state.lock();
            for &(page, data) in batch {
                if st.xor.len() < data.len() {
                    st.xor.resize(data.len(), 0);
                }
                for (a, b) in st.xor.iter_mut().zip(data) {
                    *a ^= b;
                }
                st.group.push(page);
                if st.group.len() == self.k {
                    parity_records.extend(st.take_parity_record());
                }
            }
        }
        if !parity_records.is_empty() {
            let batch: Vec<(u64, &[u8])> = parity_records
                .iter()
                .map(|(id, payload)| (*id, payload.as_slice()))
                .collect();
            self.inner.write_pages(&batch)?;
        }
        Ok(())
    }

    fn finish(&self) -> io::Result<()> {
        // Trailing partial group.
        if let Some((id, payload)) = self.state.lock().take_parity_record() {
            self.inner.write_pages(&[(id, &payload)])?;
        }
        self.inner.finish()
    }

    fn abort(&self) -> io::Result<()> {
        let mut st = self.state.lock();
        st.group.clear();
        st.xor.clear();
        drop(st);
        self.inner.abort()
    }
}

impl<B: StorageBackend> StorageBackend for ParityBackend<B> {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        Ok(Box::new(ParityEpochWriter {
            inner: self.inner.begin_epoch(epoch)?,
            k: self.k,
            state: Arc::new(Mutex::new(ParityState::default())),
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get_blob(name)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.inner.epochs()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.inner.read_epoch(epoch, &mut |id, data| {
            if id & PARITY_FLAG == 0 {
                visit(id, data);
            }
        })
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::memory::MemoryBackend;

    fn page(v: u8) -> Vec<u8> {
        vec![v; 32]
    }

    #[test]
    fn data_pages_visible_parity_hidden() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        write_epoch(&b, 1, (0..5u64).map(|p| (p, page(p as u8)))).unwrap();
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, _| seen.push(p)).unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "parity records filtered");
        // Raw store holds 5 data + 3 parity (2+2+1 grouping).
        assert_eq!(b.inner().epoch_records(1).unwrap().len(), 8);
    }

    #[test]
    fn recovers_any_single_member() {
        let b = ParityBackend::new(MemoryBackend::new(), 3);
        write_epoch(&b, 1, (0..7u64).map(|p| (p, page(p as u8 + 10)))).unwrap();
        for lost in 0..7u64 {
            let recovered = b.recover_page(1, lost).unwrap();
            assert_eq!(
                &recovered[..32],
                &page(lost as u8 + 10)[..],
                "page {lost} reconstructed"
            );
        }
    }

    #[test]
    fn recovers_under_concurrent_streams() {
        let b = ParityBackend::new(MemoryBackend::new(), 3);
        let w: Arc<dyn EpochWriter> = Arc::from(b.begin_epoch(1).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..5u64 {
                        let p = t * 5 + i;
                        w.write_pages(&[(p, &page(p as u8))]).unwrap();
                    }
                });
            }
        });
        w.finish().unwrap();
        for lost in 0..20u64 {
            let recovered = b.recover_page(1, lost).unwrap();
            assert_eq!(&recovered[..32], &page(lost as u8)[..]);
        }
    }

    #[test]
    fn uncovered_page_is_an_error() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        write_epoch(&b, 1, vec![(0, page(1))]).unwrap();
        assert!(b.recover_page(1, 99).is_err());
    }

    #[test]
    fn variable_sized_members_pad_with_zeros() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        write_epoch(&b, 1, vec![(0, vec![0xAA; 8]), (1, vec![0x55; 16])]).unwrap();
        let r0 = b.recover_page(1, 0).unwrap();
        assert_eq!(&r0[..8], &[0xAA; 8]);
        let r1 = b.recover_page(1, 1).unwrap();
        assert_eq!(&r1[..16], &[0x55; 16]);
    }
}
