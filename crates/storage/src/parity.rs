//! XOR-parity protection for checkpoint segments — a single-erasure code in
//! the spirit of the paper's pointer to its own prior work (§3.2, ref \[18\]:
//! "More cost-effective solutions based on erasure codes are also possible
//! in order to reduce both performance overhead and storage space
//! requirements").
//!
//! Pages are grouped in arrival order into groups of `k`; for each full
//! group (and the trailing partial group) one parity record is emitted whose
//! payload is the XOR of the members plus a header listing them. Storage
//! overhead is `1/k` instead of replication's `1×`, and any *single* lost or
//! corrupted page per group can be reconstructed with
//! [`ParityBackend::recover_page`].
//!
//! Parity records are stored through the same backend with the high bit of
//! the page id set; `read_epoch` filters them out so ordinary consumers (the
//! restore path) see only data pages.
//!
//! Under concurrent streams, group membership follows arrival order at the
//! session's accumulator (a mutex serialises the XOR state); which pages
//! share a group is then nondeterministic, but every data page still lands
//! in exactly one group, which is all the recovery invariant needs.
//!
//! The chain lifecycle (compaction, tier draining, epoch retirement) is
//! forwarded to the wrapped backend, with one twist: a compaction merges
//! *data* records only and re-emits fresh parity groups over the folded
//! full segment, so [`ParityBackend::recover_page`] keeps working after the
//! deltas (and their now-stale parity records) are gone.

use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{
    merge_live_prefix, ChainEntry, CompactionStats, EpochWriter, MergeOutcome, StorageBackend,
};
use crate::scrub::{RecordMeta, RepairReport, VerifyReport};

/// Page-id flag marking parity records inside the wrapped backend.
pub const PARITY_FLAG: u64 = 1 << 63;

/// Wraps a backend, adding one XOR parity record per `k` data pages.
pub struct ParityBackend<B> {
    inner: B,
    k: usize,
}

/// Accumulating parity group of one epoch session.
#[derive(Debug, Default)]
struct ParityState {
    /// Members of the currently accumulating group.
    group: Vec<u64>,
    /// Running XOR of the group members' payloads.
    xor: Vec<u8>,
    groups_emitted: u64,
}

impl ParityState {
    /// Fold one data page into the accumulating group.
    fn absorb(&mut self, page: u64, data: &[u8]) {
        if self.xor.len() < data.len() {
            self.xor.resize(data.len(), 0);
        }
        for (a, b) in self.xor.iter_mut().zip(data) {
            *a ^= b;
        }
        self.group.push(page);
    }

    /// Build the parity record payload for the current group, if any.
    fn take_parity_record(&mut self) -> Option<(u64, Vec<u8>)> {
        if self.group.is_empty() {
            return None;
        }
        // Payload: [k u32][member ids u64 * k][xor bytes]
        let mut payload = Vec::with_capacity(4 + self.group.len() * 8 + self.xor.len());
        payload.extend_from_slice(&(self.group.len() as u32).to_le_bytes());
        for &m in &self.group {
            payload.extend_from_slice(&m.to_le_bytes());
        }
        payload.extend_from_slice(&self.xor);
        let id = PARITY_FLAG | self.groups_emitted;
        self.groups_emitted += 1;
        self.group.clear();
        self.xor.clear();
        Some((id, payload))
    }
}

impl<B: StorageBackend> ParityBackend<B> {
    /// Group size `k` (storage overhead `1/k`). `k >= 2`.
    pub fn new(inner: B, k: usize) -> Self {
        assert!(k >= 2, "parity group needs at least 2 members");
        Self { inner, k }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Fresh parity records covering `records` in order: one XOR record per
    /// `k` members plus the trailing partial group (the compaction paths'
    /// re-emission).
    fn parity_records(&self, records: &[(u64, Vec<u8>)]) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::with_capacity(records.len() / self.k + 1);
        let mut state = ParityState::default();
        for (page, data) in records {
            debug_assert_eq!(page & PARITY_FLAG, 0, "parity id in compacted image");
            state.absorb(*page, data);
            if state.group.len() == self.k {
                out.extend(state.take_parity_record());
            }
        }
        out.extend(state.take_parity_record());
        out
    }

    /// Reconstruct a lost/corrupt page of a finished epoch from its parity
    /// group. Only works for a single loss per group (XOR code), and
    /// requires page ids to be unique within the epoch — which checkpoint
    /// epochs guarantee (the engine commits each page exactly once per
    /// checkpoint). Duplicate ids inside one group would XOR each other
    /// out.
    pub fn recover_page(&self, epoch: u64, lost: u64) -> io::Result<Vec<u8>> {
        // Random access only — never a full-epoch stream: the reason this
        // runs at all is usually that one record of the epoch is corrupt,
        // and `read_epoch` would fail at exactly that record. The frame
        // walk (`epoch_page_ids`) does not decode payloads, and seeks skip
        // the bad record entirely.
        //
        // Pass 1: find the parity group containing `lost`.
        let parity_ids: Vec<u64> = self
            .inner
            .epoch_page_ids(epoch)?
            .into_iter()
            .filter(|id| id & PARITY_FLAG != 0)
            .collect();
        let mut group: Option<(Vec<u64>, Vec<u8>)> = None;
        for id in parity_ids {
            let Some(payload) = self.inner.read_page_at(epoch, id)? else {
                continue;
            };
            let k = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
            let mut members = Vec::with_capacity(k);
            for i in 0..k {
                let s = 4 + i * 8;
                members.push(u64::from_le_bytes(payload[s..s + 8].try_into().unwrap()));
            }
            if members.contains(&lost) {
                let xor = payload[4 + k * 8..].to_vec();
                group = Some((members, xor));
                break;
            }
        }
        let (members, mut acc) = group.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("page {lost} not covered by any parity group in epoch {epoch}"),
            )
        })?;
        // Pass 2: XOR the surviving members back out of the parity.
        for member in members {
            if member == lost {
                continue;
            }
            let payload = self.inner.read_page_at(epoch, member)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("parity group member {member} missing from epoch {epoch}"),
                )
            })?;
            if acc.len() < payload.len() {
                acc.resize(payload.len(), 0);
            }
            for (a, b) in acc.iter_mut().zip(&payload) {
                *a ^= b;
            }
        }
        Ok(acc)
    }
}

/// Epoch session that interleaves parity records with the data stream.
struct ParityEpochWriter {
    inner: Box<dyn EpochWriter>,
    k: usize,
    state: Arc<Mutex<ParityState>>,
}

impl EpochWriter for ParityEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        for &(page, _) in batch {
            assert_eq!(page & PARITY_FLAG, 0, "page id collides with parity flag");
        }
        self.inner.write_pages(batch)?;
        // Fold the batch into the accumulating group under the state lock;
        // emit full groups' parity records through the inner session.
        let mut parity_records = Vec::new();
        {
            let mut st = self.state.lock();
            for &(page, data) in batch {
                st.absorb(page, data);
                if st.group.len() == self.k {
                    parity_records.extend(st.take_parity_record());
                }
            }
        }
        if !parity_records.is_empty() {
            let batch: Vec<(u64, &[u8])> = parity_records
                .iter()
                .map(|(id, payload)| (*id, payload.as_slice()))
                .collect();
            self.inner.write_pages(&batch)?;
        }
        Ok(())
    }

    fn finish(&self) -> io::Result<()> {
        // Trailing partial group.
        if let Some((id, payload)) = self.state.lock().take_parity_record() {
            self.inner.write_pages(&[(id, &payload)])?;
        }
        self.inner.finish()
    }

    fn abort(&self) -> io::Result<()> {
        let mut st = self.state.lock();
        st.group.clear();
        st.xor.clear();
        drop(st);
        self.inner.abort()
    }
}

impl<B: StorageBackend> StorageBackend for ParityBackend<B> {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        Ok(Box::new(ParityEpochWriter {
            inner: self.inner.begin_epoch(epoch)?,
            k: self.k,
            state: Arc::new(Mutex::new(ParityState::default())),
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get_blob(name)
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        self.inner.delete_blob(name)
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        self.inner.list_blobs()
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.inner.epochs()
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        self.inner.high_water()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.inner.read_epoch(epoch, &mut |id, data| {
            if id & PARITY_FLAG == 0 {
                visit(id, data);
            }
        })
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        // Audit fix: the trait default streams the whole epoch (payloads
        // decoded and discarded) through this wrapper's filtered
        // `read_epoch`. The inner backend's frame walk is the fast path —
        // only the parity ids need filtering out.
        let mut ids = self.inner.epoch_page_ids(epoch)?;
        ids.retain(|id| id & PARITY_FLAG == 0);
        Ok(ids)
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        // Audit fix: forward the random access (data ids are stored
        // unflagged, so the inner seek finds them directly) instead of the
        // default's full-epoch stream. A payload the inner backend reports
        // as corrupt (`InvalidData`: CRC mismatch on a decoded record) is
        // reconstructed from its parity group — the single-page degraded
        // read this wrapper exists for.
        match self.inner.read_page_at(epoch, page) {
            Ok(hit) => Ok(hit),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let mut data = self.recover_page(epoch, page)?;
                // XOR reconstruction is zero-padded to the longest group
                // member; the stored frame still knows the page's exact
                // length, so the degraded read returns byte-identical data.
                if let Ok(Some(meta)) = self.inner.record_meta(epoch, page) {
                    if (meta.raw_len as usize) <= data.len() {
                        data.truncate(meta.raw_len as usize);
                    }
                }
                Ok(Some(data))
            }
            Err(e) => Err(e),
        }
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_stored(&self) -> u64 {
        self.inner.bytes_stored()
    }

    // The chain lifecycle forwards to the wrapped backend. Without these, a
    // parity-wrapped backend fell back to the trait defaults: it reported
    // `supports_compaction() == false` (disarming the maintenance worker's
    // `CompactionPolicy` permanently) and turned `remove_epoch`/`drain_one`
    // into unsupported/no-op stubs, so a tiered parity stack never drained
    // or compacted.

    fn supports_compaction(&self) -> bool {
        self.inner.supports_compaction()
    }

    fn chain(&self) -> io::Result<Vec<ChainEntry>> {
        self.inner.chain()
    }

    // `compact` is NOT forwarded to the inner backend: its merge would
    // fold raw records latest-wins, and parity ids collide across epochs
    // (`PARITY_FLAG | group`), so old groups would silently overwrite each
    // other while covering superseded page versions. Instead the merge
    // runs over *this* backend's parity-filtered view (data records only)
    // and fresh parity groups are appended to the merge buffer — which
    // this override already owns, so the image is never copied — before
    // one atomic install on the inner backend.

    fn compact(&self, up_to: u64) -> io::Result<CompactionStats> {
        if !self.supports_compaction() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "backend does not support compaction",
            ));
        }
        match merge_live_prefix(self, up_to)? {
            MergeOutcome::AlreadyCompact => Ok(CompactionStats {
                from: up_to,
                into: up_to,
                ..CompactionStats::default()
            }),
            MergeOutcome::Merged {
                from,
                segments,
                bytes_before,
                mut records,
            } => {
                let bytes_after: u64 = records.iter().map(|(_, d)| d.len() as u64).sum();
                let parity = self.parity_records(&records);
                records.extend(parity);
                self.inner.install_compacted(from, up_to, &records)?;
                Ok(CompactionStats {
                    from,
                    into: up_to,
                    segments_removed: segments,
                    bytes_before,
                    bytes_after,
                })
            }
        }
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        // Generic primitive (an outer wrapper's default `compact` may land
        // here with a data-only image): same parity re-emission as the
        // `compact` override above, at the cost of copying the payloads
        // into the combined slice the inner install wants.
        let mut all: Vec<(u64, Vec<u8>)> =
            Vec::with_capacity(records.len() + records.len() / self.k + 1);
        for (page, data) in records {
            all.push((*page, data.clone()));
        }
        all.extend(self.parity_records(records));
        self.inner.install_compacted(from, into, &all)
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        self.inner.remove_epoch(epoch)
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        self.inner.remove_epochs(epochs)
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        self.inner.drain_one()
    }

    fn drain_backlog(&self) -> usize {
        self.inner.drain_backlog()
    }

    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        // The inner walk sees parity records as ordinary pages (their ids
        // carry `PARITY_FLAG`), so a rotten parity record is reported and
        // repaired like any other — redundancy that silently rots is no
        // redundancy at all.
        self.inner.verify_epoch(epoch)
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        // `records` is a data-page image (an outer repair path never sees
        // parity records); fresh groups are re-emitted over it, exactly as
        // the compaction paths do.
        let mut all: Vec<(u64, Vec<u8>)> =
            Vec::with_capacity(records.len() + records.len() / self.k + 1);
        for (page, data) in records {
            all.push((*page, data.clone()));
        }
        all.extend(self.parity_records(records));
        self.inner.rewrite_epoch(epoch, &all)
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        let report = self.inner.verify_epoch(epoch)?;
        if report.is_clean() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("epoch {epoch} verifies clean; nothing to repair"),
            ));
        }
        if report.corrupt_pages.is_empty() {
            // Structural-only damage (e.g. a rotten manifest count) is the
            // inner backend's to heal — parity protects payloads.
            return self.inner.repair_epoch(epoch);
        }
        // Rebuild the data image via this wrapper's degraded reads (each
        // corrupt member reconstructs from its group — one loss per group),
        // then rewrite the segment with fresh parity over the healed data.
        // A second loss in any group fails the read and the error
        // propagates: the caller quarantines.
        let mut ids: Vec<u64> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for id in self.inner.epoch_page_ids(epoch)? {
            if id & PARITY_FLAG == 0 && seen.insert(id) {
                ids.push(id);
            }
        }
        let mut data = Vec::with_capacity(ids.len());
        for id in ids {
            let payload = self.read_page_at(epoch, id)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("page {id} vanished from epoch {epoch} during repair"),
                )
            })?;
            data.push((id, payload));
        }
        self.rewrite_epoch(epoch, &data)?;
        Ok(RepairReport {
            epoch,
            pages: report.corrupt_pages,
            rewrote_segment: true,
            source: "parity".to_owned(),
        })
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        self.inner.record_meta(epoch, page)
    }

    fn io_stats(&self) -> crate::io::IoStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::memory::MemoryBackend;

    fn page(v: u8) -> Vec<u8> {
        vec![v; 32]
    }

    #[test]
    fn data_pages_visible_parity_hidden() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        write_epoch(&b, 1, (0..5u64).map(|p| (p, page(p as u8)))).unwrap();
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, _| seen.push(p)).unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "parity records filtered");
        // Raw store holds 5 data + 3 parity (2+2+1 grouping).
        assert_eq!(b.inner().epoch_records(1).unwrap().len(), 8);
    }

    #[test]
    fn recovers_any_single_member() {
        let b = ParityBackend::new(MemoryBackend::new(), 3);
        write_epoch(&b, 1, (0..7u64).map(|p| (p, page(p as u8 + 10)))).unwrap();
        for lost in 0..7u64 {
            let recovered = b.recover_page(1, lost).unwrap();
            assert_eq!(
                &recovered[..32],
                &page(lost as u8 + 10)[..],
                "page {lost} reconstructed"
            );
        }
    }

    #[test]
    fn recovers_under_concurrent_streams() {
        let b = ParityBackend::new(MemoryBackend::new(), 3);
        let w: Arc<dyn EpochWriter> = Arc::from(b.begin_epoch(1).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..5u64 {
                        let p = t * 5 + i;
                        w.write_pages(&[(p, &page(p as u8))]).unwrap();
                    }
                });
            }
        });
        w.finish().unwrap();
        for lost in 0..20u64 {
            let recovered = b.recover_page(1, lost).unwrap();
            assert_eq!(&recovered[..32], &page(lost as u8)[..]);
        }
    }

    #[test]
    fn uncovered_page_is_an_error() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        write_epoch(&b, 1, vec![(0, page(1))]).unwrap();
        assert!(b.recover_page(1, 99).is_err());
    }

    #[test]
    fn chain_api_forwards_to_inner() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        assert!(b.supports_compaction(), "memory backend supports folds");
        write_epoch(&b, 1, vec![(0, page(1))]).unwrap();
        write_epoch(&b, 2, vec![(1, page(2))]).unwrap();
        assert_eq!(b.chain().unwrap().len(), 2);
        b.remove_epoch(1).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![2]);
        assert_eq!(b.drain_one().unwrap(), None, "single-tier: no backlog");
        assert_eq!(b.bytes_stored(), b.inner().bytes_stored());
    }

    #[test]
    fn compaction_reemits_parity_and_recovers() {
        use crate::backend::EpochKind;
        let b = ParityBackend::new(MemoryBackend::new(), 3);
        write_epoch(&b, 1, (0..7u64).map(|p| (p, page(p as u8)))).unwrap();
        write_epoch(&b, 2, (2..5u64).map(|p| (p, page(p as u8 + 100)))).unwrap();
        write_epoch(&b, 3, vec![(0, page(200))]).unwrap();
        let stats = b.compact(3).unwrap();
        assert_eq!((stats.from, stats.into), (1, 3));
        let chain = b.chain().unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].kind, EpochKind::Full);
        // Latest-wins image through the filtered view.
        let mut seen = Vec::new();
        b.read_epoch(3, &mut |p, d| seen.push((p, d[0]))).unwrap();
        assert_eq!(
            seen,
            vec![
                (0, 200),
                (1, 1),
                (2, 102),
                (3, 103),
                (4, 104),
                (5, 5),
                (6, 6)
            ]
        );
        // Every surviving page version is recoverable from the re-emitted
        // groups — the folded segment's parity covers the folded data, not
        // whatever grouping the superseded deltas had.
        let expect = [200u8, 1, 102, 103, 104, 5, 6];
        for (p, v) in expect.iter().enumerate() {
            let r = b.recover_page(3, p as u64).unwrap();
            assert_eq!(&r[..32], &page(*v)[..], "page {p} after compaction");
        }
        // 7 data pages in groups of 3 => 3 parity records in the raw store.
        assert_eq!(b.inner().epoch_records(3).unwrap().len(), 7 + 3);
    }

    #[test]
    fn parity_over_tiered_drains_and_compacts() {
        use crate::tiered::TieredBackend;
        let (fast, fast_view) = MemoryBackend::shared();
        let (slow, slow_view) = MemoryBackend::shared();
        let tiered = TieredBackend::new(Box::new(fast), Box::new(slow), 0).unwrap();
        let b = ParityBackend::new(tiered, 2);
        assert!(b.supports_compaction(), "forwarded through both wrappers");
        write_epoch(&b, 1, (0..5u64).map(|p| (p, page(p as u8)))).unwrap();
        write_epoch(&b, 2, vec![(1, page(91))]).unwrap();
        // Parity records ride the drain queue with their data.
        assert_eq!(b.drain_one().unwrap(), Some(1));
        assert!(!slow_view.epochs().unwrap().is_empty());
        // Compaction drains the rest and folds on the slow tier, with
        // parity re-emitted over the full image.
        b.compact(2).unwrap();
        assert!(fast_view.epochs().unwrap().is_empty(), "fast tier drained");
        assert_eq!(slow_view.epochs().unwrap(), vec![2], "folded on slow");
        for (p, v) in [(0u64, 0u8), (1, 91), (2, 2), (3, 3), (4, 4)] {
            assert_eq!(&b.recover_page(2, p).unwrap()[..32], &page(v)[..]);
        }
    }

    #[test]
    fn variable_sized_members_pad_with_zeros() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        write_epoch(&b, 1, vec![(0, vec![0xAA; 8]), (1, vec![0x55; 16])]).unwrap();
        let r0 = b.recover_page(1, 0).unwrap();
        assert_eq!(&r0[..8], &[0xAA; 8]);
        let r1 = b.recover_page(1, 1).unwrap();
        assert_eq!(&r1[..16], &[0x55; 16]);
    }

    #[test]
    fn degraded_read_truncates_padded_reconstruction_to_exact_length() {
        // Page 0 is shorter than its group partner: the XOR image is padded
        // to 16 bytes, but the degraded read must return the original 8.
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        write_epoch(&b, 1, vec![(0, vec![0xAA; 8]), (1, vec![0x55; 16])]).unwrap();
        b.inner().corrupt_stored_page(1, 0, 3).unwrap();
        let healed = b.read_page_at(1, 0).unwrap().unwrap();
        assert_eq!(healed, vec![0xAA; 8], "byte-identical, not padded");
    }

    #[test]
    fn repair_rebuilds_a_corrupt_member_and_reverifies_clean() {
        let b = ParityBackend::new(MemoryBackend::new(), 3);
        let pages: Vec<(u64, Vec<u8>)> = (0..7u64).map(|p| (p, page(p as u8 + 10))).collect();
        write_epoch(&b, 1, pages.clone()).unwrap();
        b.inner().corrupt_stored_page(1, 4, 0).unwrap();
        let report = b.verify_epoch(1).unwrap();
        assert_eq!(report.corrupt_pages, vec![4]);
        let repair = b.repair_epoch(1).unwrap();
        assert_eq!(repair.source, "parity");
        assert!(repair.rewrote_segment);
        assert!(b.verify_epoch(1).unwrap().is_clean());
        let mut seen = Vec::new();
        b.read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, pages, "healed epoch is byte-identical");
    }

    #[test]
    fn double_loss_in_one_group_is_irreparable() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        // k=2: pages 0 and 1 share a group; corrupt both.
        write_epoch(&b, 1, vec![(0, page(1)), (1, page(2)), (2, page(3))]).unwrap();
        b.inner().corrupt_stored_page(1, 0, 0).unwrap();
        b.inner().corrupt_stored_page(1, 1, 0).unwrap();
        assert!(b.repair_epoch(1).is_err(), "XOR repairs one loss per group");
    }

    #[test]
    fn corrupt_parity_record_repairs_from_surviving_data() {
        let b = ParityBackend::new(MemoryBackend::new(), 2);
        let pages: Vec<(u64, Vec<u8>)> = vec![(0, page(7)), (1, page(8))];
        write_epoch(&b, 1, pages.clone()).unwrap();
        b.inner().corrupt_stored_page(1, PARITY_FLAG, 0).unwrap();
        assert!(!b.verify_epoch(1).unwrap().is_clean());
        b.repair_epoch(1).unwrap();
        assert!(b.verify_epoch(1).unwrap().is_clean());
        // The re-emitted parity actually protects the data again.
        b.inner().corrupt_stored_page(1, 0, 0).unwrap();
        assert_eq!(&b.read_page_at(1, 0).unwrap().unwrap()[..], &page(7)[..]);
    }
}
