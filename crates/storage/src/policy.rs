//! Multi-level resilience policies (the VELOC-style blueprint): a
//! declarative [`ResilienceSpec`] — e.g. *L0 local NVMe → L1 partner-rank
//! replica → L2 parity cold tier* — composed out of the existing backend
//! primitives into one [`PolicyBackend`] that implements
//! [`StorageBackend`].
//!
//! ## Spec grammar
//!
//! Levels are listed fastest-first, separated by `->`. Each level is
//! `name=kind` with an optional `#capacity` suffix (maximum resident
//! epochs; `0` or absent means unbounded; the last level never evicts):
//!
//! ```text
//! nvme=plain#4 -> partner=replica*2 -> cold=parity*4
//! ```
//!
//! * `plain` — a single store, no redundancy inside the level;
//! * `replica*N` — N-way replication ([`ReplicatedBackend`]) inside the
//!   level (the paper's partner-copy remedy);
//! * `parity*K` — XOR single-erasure groups of K pages
//!   ([`ParityBackend`]) inside the level.
//!
//! ## Drain / rebuild lifecycle
//!
//! An epoch commits to level 0 only; [`EpochWriter::finish`] enqueues a
//! *copy* of that epoch toward every outer level. [`PolicyBackend::drain_one`]
//! — driven by the service maintenance worker through its per-tenant
//! `DrainQueue` — performs one copy per call: smallest pending epoch
//! first, read from the lowest alive level that holds it, written through
//! the destination level's protection wrapper. A failed copy marks the
//! destination level *suspect* and parks the item on a deferred list so
//! the maintenance barrier is never wedged by a dead level. Every
//! `drain_one`/`drain_backlog` call first re-probes suspect levels; a
//! level that answers again is *reconciled* — deferred copies re-queued
//! as **rebuilds**, epochs retired while it was dead removed, missing
//! blobs mirrored from the lowest alive level — and resumes normal
//! service. Levels with a capacity evict their oldest epoch once a
//! higher (slower) level holds a durable copy.
//!
//! ## Degraded reads
//!
//! Every read falls through levels in order — fast tier first, partner
//! next, cold parity last. A level that errors (or no longer holds the
//! epoch) is skipped; inside a parity level a single corrupt record is
//! reconstructed from its XOR group. Reads fail only when **no** level
//! can serve them, so `restore_latest` and demand-paged (lazy) restore
//! both keep working on a degraded stack.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::backend::{ChainEntry, CompactionStats, EpochKind, EpochWriter, StorageBackend};
use crate::errors::{classify, FaultClass, RetryPolicy};
use crate::failing::{FailingBackend, FailureControl};
use crate::io::IoStats;
use crate::parity::ParityBackend;
use crate::replicate::ReplicatedBackend;
use crate::scrub::{RecordMeta, RepairReport, VerifyReport};

/// Redundancy scheme *inside* one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelProtection {
    /// One store, no intra-level redundancy.
    None,
    /// N-way replication across stores of this level.
    Replicated {
        /// Replica count (≥ 2).
        copies: usize,
    },
    /// XOR parity groups of `group` pages within one store.
    Parity {
        /// Pages per parity group (≥ 2).
        group: usize,
    },
}

/// One level of a [`ResilienceSpec`], fastest-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSpec {
    /// Human-readable level name (unique within the spec).
    pub name: String,
    /// Redundancy scheme inside the level.
    pub protection: LevelProtection,
    /// Maximum resident epochs (0 = unbounded). Ignored for the last
    /// level, which never evicts.
    pub capacity: usize,
}

/// A declarative multi-level resilience policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceSpec {
    /// Levels, fastest (level 0, the commit target) first.
    pub levels: Vec<LevelSpec>,
}

fn spec_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

impl ResilienceSpec {
    /// Parse the `name=kind[#cap] -> ...` grammar (see the module docs).
    pub fn parse(text: &str) -> io::Result<ResilienceSpec> {
        let mut levels = Vec::new();
        for raw in text.split("->") {
            let token = raw.trim();
            if token.is_empty() {
                return Err(spec_err(format!("empty level in spec {text:?}")));
            }
            let (name, rest) = token
                .split_once('=')
                .ok_or_else(|| spec_err(format!("level {token:?}: expected name=kind")))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(spec_err(format!("level {token:?}: empty name")));
            }
            let (kind, capacity) = match rest.split_once('#') {
                Some((kind, cap)) => {
                    let capacity = cap
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| spec_err(format!("level {token:?}: bad capacity {cap:?}")))?;
                    (kind.trim(), capacity)
                }
                None => (rest.trim(), 0),
            };
            let protection = if kind == "plain" {
                LevelProtection::None
            } else if let Some(n) = kind.strip_prefix("replica*") {
                let copies = n
                    .parse::<usize>()
                    .map_err(|_| spec_err(format!("level {token:?}: bad replica count")))?;
                if copies < 2 {
                    return Err(spec_err(format!("level {token:?}: replica*N needs N >= 2")));
                }
                LevelProtection::Replicated { copies }
            } else if let Some(k) = kind.strip_prefix("parity*") {
                let group = k
                    .parse::<usize>()
                    .map_err(|_| spec_err(format!("level {token:?}: bad parity group")))?;
                if group < 2 {
                    return Err(spec_err(format!("level {token:?}: parity*K needs K >= 2")));
                }
                LevelProtection::Parity { group }
            } else {
                return Err(spec_err(format!(
                    "level {token:?}: unknown kind {kind:?} (plain | replica*N | parity*K)"
                )));
            };
            levels.push(LevelSpec {
                name: name.to_string(),
                protection,
                capacity,
            });
        }
        let spec = ResilienceSpec { levels };
        spec.validate()?;
        Ok(spec)
    }

    /// Reject empty or ambiguous specs.
    pub fn validate(&self) -> io::Result<()> {
        if self.levels.is_empty() {
            return Err(spec_err("spec needs at least one level"));
        }
        let mut names = BTreeSet::new();
        for level in &self.levels {
            if !names.insert(level.name.as_str()) {
                return Err(spec_err(format!("duplicate level name {:?}", level.name)));
            }
        }
        Ok(())
    }

    /// Canonical textual form (round-trips through [`ResilienceSpec::parse`]).
    pub fn to_spec_string(&self) -> String {
        self.levels
            .iter()
            .map(|l| {
                let kind = match l.protection {
                    LevelProtection::None => "plain".to_string(),
                    LevelProtection::Replicated { copies } => format!("replica*{copies}"),
                    LevelProtection::Parity { group } => format!("parity*{group}"),
                };
                if l.capacity > 0 {
                    format!("{}={kind}#{}", l.name, l.capacity)
                } else {
                    format!("{}={kind}", l.name)
                }
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Why a copy was queued toward a level — steady-state drain of a fresh
/// epoch, or rebuild of a level that lost it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyKind {
    Drain,
    Rebuild,
}

/// The protection wrapper actually instantiated for one level.
enum Protection {
    Plain(Box<dyn StorageBackend>),
    Replicated(ReplicatedBackend),
    Parity(ParityBackend<Box<dyn StorageBackend>>),
}

impl Protection {
    fn store(&self) -> &dyn StorageBackend {
        match self {
            Protection::Plain(b) => &**b,
            Protection::Replicated(r) => r,
            Protection::Parity(p) => p,
        }
    }
}

#[derive(Default)]
struct LevelCounters {
    drains_in: AtomicU64,
    rebuilds_in: AtomicU64,
    evictions: AtomicU64,
    copy_bytes: AtomicU64,
    copy_failures: AtomicU64,
    read_hits: AtomicU64,
    read_fallthroughs: AtomicU64,
}

struct Level {
    name: String,
    capacity: usize,
    protection: Protection,
    /// Set when an operation against this level failed; cleared once a
    /// liveness probe succeeds and the level has been reconciled.
    suspect: AtomicBool,
    counters: LevelCounters,
}

impl Level {
    fn store(&self) -> &dyn StorageBackend {
        self.protection.store()
    }

    fn is_suspect(&self) -> bool {
        self.suspect.load(Ordering::SeqCst)
    }
}

/// Point-in-time statistics for one level of a [`PolicyBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelStats {
    /// Level name from the spec.
    pub name: String,
    /// Epochs currently resident (0 when the level is down).
    pub resident_epochs: usize,
    /// Whether the level is currently marked suspect (last operation
    /// against it failed and it has not been reconciled yet).
    pub suspect: bool,
    /// Steady-state drain copies completed into this level.
    pub drains_in: u64,
    /// Rebuild copies (post-failure re-population) completed into it.
    pub rebuilds_in: u64,
    /// Epochs evicted from this level under its capacity bound.
    pub evictions: u64,
    /// Payload bytes copied into this level.
    pub copy_bytes: u64,
    /// Copies into this level that failed (each parks one deferred item).
    pub copy_failures: u64,
    /// Copies currently queued toward this level.
    pub queued: usize,
    /// Copies parked because the level was down.
    pub deferred: usize,
    /// Reads this level served.
    pub read_hits: u64,
    /// Reads that had to fall through past this level although it held
    /// (or should have held) the epoch.
    pub read_fallthroughs: u64,
}

/// Point-in-time statistics for a whole [`PolicyBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyStats {
    /// One entry per level, fastest-first.
    pub levels: Vec<LevelStats>,
}

struct PolicyState {
    /// Pending copies *into* each level, ascending by epoch. `queues[0]`
    /// only ever receives rebuild items — fresh epochs commit straight to
    /// level 0.
    queues: Vec<VecDeque<(u64, CopyKind)>>,
    /// Copies parked because their destination level was down.
    deferred: Vec<Vec<(u64, CopyKind)>>,
    /// Epochs retired through the policy (so a level that slept through
    /// the retirement drops them on reconcile instead of resurrecting
    /// them).
    retired: BTreeSet<u64>,
    /// Blob names deleted through the policy. Reconcile needs this to
    /// tell "the healing level missed a delete" (drop it there too) from
    /// "the healing level is the *sole holder* of a blob written while
    /// every other level was down" (mirror it back out — dropping it
    /// would destroy the only copy, e.g. the layout of the newest
    /// checkpoint). Cleared once every level is back in service.
    deleted_blobs: BTreeSet<String>,
    high_water: Option<u64>,
}

struct Shared {
    levels: Vec<Level>,
    state: Mutex<PolicyState>,
    /// Serialises drain/reconcile I/O so `drain_one` callers from the
    /// maintenance worker and direct callers never interleave copies.
    drain_lock: Mutex<()>,
    /// Backoff schedule applied to transient faults during copies and
    /// fall-through reads. Permanent faults keep the suspect/deferred
    /// semantics untouched; corrupt faults go to repair, never retry.
    retry: Mutex<RetryPolicy>,
}

/// Builder for a [`PolicyBackend`]: a spec plus a store factory.
pub struct PolicyBuilder {
    spec: ResilienceSpec,
}

impl PolicyBuilder {
    /// Start building from a validated spec.
    pub fn new(spec: ResilienceSpec) -> io::Result<PolicyBuilder> {
        spec.validate()?;
        Ok(PolicyBuilder { spec })
    }

    /// Instantiate the policy. `factory(level, replica)` supplies one
    /// store per level (and per replica for `replica*N` levels; plain and
    /// parity levels call it with `replica == 0` once).
    pub fn build<F>(self, mut factory: F) -> io::Result<PolicyBackend>
    where
        F: FnMut(usize, usize) -> Box<dyn StorageBackend>,
    {
        self.build_wrapped(|level, replica| factory(level, replica))
    }

    /// Instantiate the policy with one shared [`FailureControl`] per
    /// level wrapped around every store of that level, *below* the
    /// level's protection wrapper — `controls[l].kill()` takes the whole
    /// level down at once (every replica, every parity store), which is
    /// exactly what the cross-level fault matrix needs.
    pub fn build_injected<F>(
        self,
        mut factory: F,
    ) -> io::Result<(PolicyBackend, Vec<FailureControl>)>
    where
        F: FnMut(usize, usize) -> Box<dyn StorageBackend>,
    {
        let controls: Vec<FailureControl> = (0..self.spec.levels.len())
            .map(|_| FailureControl::new())
            .collect();
        let per_level = controls.clone();
        let backend = self.build_wrapped(move |level, replica| {
            let store = factory(level, replica);
            Box::new(FailingBackend::with_control(
                store,
                per_level[level].clone(),
            )) as Box<dyn StorageBackend>
        })?;
        Ok((backend, controls))
    }

    fn build_wrapped<F>(self, mut factory: F) -> io::Result<PolicyBackend>
    where
        F: FnMut(usize, usize) -> Box<dyn StorageBackend>,
    {
        let mut levels = Vec::with_capacity(self.spec.levels.len());
        for (l, spec) in self.spec.levels.iter().enumerate() {
            let protection = match spec.protection {
                LevelProtection::None => Protection::Plain(factory(l, 0)),
                LevelProtection::Replicated { copies } => Protection::Replicated(
                    ReplicatedBackend::new((0..copies).map(|r| factory(l, r)).collect()),
                ),
                LevelProtection::Parity { group } => {
                    Protection::Parity(ParityBackend::new(factory(l, 0), group))
                }
            };
            levels.push(Level {
                name: spec.name.clone(),
                capacity: spec.capacity,
                protection,
                suspect: AtomicBool::new(false),
                counters: LevelCounters::default(),
            });
        }
        // Resume numbering above anything the level stores already hold.
        let mut high_water = None;
        for level in &levels {
            if let Ok(hw) = level.store().high_water() {
                high_water = high_water.max(hw);
            }
        }
        let n = levels.len();
        Ok(PolicyBackend {
            shared: Arc::new(Shared {
                levels,
                state: Mutex::new(PolicyState {
                    queues: (0..n).map(|_| VecDeque::new()).collect(),
                    deferred: (0..n).map(|_| Vec::new()).collect(),
                    retired: BTreeSet::new(),
                    deleted_blobs: BTreeSet::new(),
                    high_water,
                }),
                drain_lock: Mutex::new(()),
                retry: Mutex::new(RetryPolicy::default()),
            }),
        })
    }
}

/// A multi-level resilience policy as a [`StorageBackend`]: commits land
/// on level 0, maintenance drains copies outward, reads fall through
/// levels in order. Cheap to clone (shared state).
#[derive(Clone)]
pub struct PolicyBackend {
    shared: Arc<Shared>,
}

/// One epoch's `(page, payload)` records, buffered.
type EpochRecords = Vec<(u64, Vec<u8>)>;

/// Buffered records of one epoch read through a level's protection view.
fn try_read_epoch(store: &dyn StorageBackend, epoch: u64) -> io::Result<Option<EpochRecords>> {
    match store.epochs() {
        Ok(eps) if !eps.contains(&epoch) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    store.read_epoch(epoch, &mut |p, d| records.push((p, d.to_vec())))?;
    Ok(Some(records))
}

impl PolicyBackend {
    /// Number of levels in the policy.
    pub fn level_count(&self) -> usize {
        self.shared.levels.len()
    }

    /// Names of the levels, fastest-first.
    pub fn level_names(&self) -> Vec<String> {
        self.shared.levels.iter().map(|l| l.name.clone()).collect()
    }

    /// Replace the transient-fault backoff schedule (copies and
    /// fall-through reads). Takes effect on the next operation.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.shared.retry.lock().unwrap() = policy;
    }

    /// The transient-fault backoff schedule currently in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.shared.retry.lock().unwrap()
    }

    /// Point-in-time per-level statistics.
    pub fn stats(&self) -> PolicyStats {
        let state = self.shared.state.lock().unwrap();
        let levels = self
            .shared
            .levels
            .iter()
            .enumerate()
            .map(|(l, level)| {
                let c = &level.counters;
                let resident = if level.is_suspect() {
                    0
                } else {
                    level.store().epochs().map(|e| e.len()).unwrap_or(0)
                };
                LevelStats {
                    name: level.name.clone(),
                    resident_epochs: resident,
                    suspect: level.is_suspect(),
                    drains_in: c.drains_in.load(Ordering::SeqCst),
                    rebuilds_in: c.rebuilds_in.load(Ordering::SeqCst),
                    evictions: c.evictions.load(Ordering::SeqCst),
                    copy_bytes: c.copy_bytes.load(Ordering::SeqCst),
                    copy_failures: c.copy_failures.load(Ordering::SeqCst),
                    queued: state.queues[l].len(),
                    deferred: state.deferred[l].len(),
                    read_hits: c.read_hits.load(Ordering::SeqCst),
                    read_fallthroughs: c.read_fallthroughs.load(Ordering::SeqCst),
                }
            })
            .collect();
        PolicyStats { levels }
    }

    /// Copies still owed (queued or deferred) toward any level. The
    /// maintenance barrier drains `drain_backlog()` (queued only); this
    /// also counts parked items, for tests asserting eventual
    /// convergence after a heal.
    pub fn copies_owed(&self) -> usize {
        let state = self.shared.state.lock().unwrap();
        state.queues.iter().map(|q| q.len()).sum::<usize>()
            + state.deferred.iter().map(|d| d.len()).sum::<usize>()
    }

    fn last_level(&self) -> usize {
        self.shared.levels.len() - 1
    }

    /// Probe suspect levels; reconcile any that answer again. Called at
    /// the top of every `drain_one`/`drain_backlog` so a healed level
    /// re-enters service on the next maintenance tick. Caller holds
    /// `drain_lock`.
    fn reconcile_suspects(&self) {
        for l in 0..self.shared.levels.len() {
            if !self.shared.levels[l].is_suspect() {
                continue;
            }
            let level = &self.shared.levels[l];
            let Ok(present) = level.store().epochs() else {
                // Still down: park anything queued for this level. The
                // items cannot progress until the level answers a probe,
                // and leaving them queued would both hide them from the
                // `deferred` stat and make `drain_backlog` count copies
                // no drain step can perform.
                let mut state = self.shared.state.lock().unwrap();
                let parked: Vec<(u64, CopyKind)> = state.queues[l].drain(..).collect();
                state.deferred[l].extend(parked);
                continue;
            };
            let present: BTreeSet<u64> = present.into_iter().collect();
            // Reference view: the union of what the other alive levels
            // hold. (A suspect level that just answered its probe is not
            // a reference until reconciled.)
            let mut reference: BTreeSet<u64> = BTreeSet::new();
            let mut ref_level: Option<usize> = None;
            for (o, other) in self.shared.levels.iter().enumerate() {
                if o == l || other.is_suspect() {
                    continue;
                }
                if let Ok(eps) = other.store().epochs() {
                    reference.extend(eps);
                    ref_level.get_or_insert(o);
                }
            }
            // Drop epochs retired while the level was down.
            let (stale, retired_snapshot) = {
                let state = self.shared.state.lock().unwrap();
                let stale: Vec<u64> = present
                    .iter()
                    .copied()
                    .filter(|e| state.retired.contains(e))
                    .collect();
                (stale, state.retired.clone())
            };
            if !stale.is_empty() && level.store().remove_epochs(&stale).is_err() {
                continue; // went down again mid-reconcile; retry later
            }
            // Mirror blobs against the lowest alive level. Everything the
            // reference holds is refreshed onto the healing level (a blob
            // rewritten under the same name while this level slept would
            // otherwise stay stale here and win a fall-through read).
            // What only the healing level holds is either a delete it
            // missed (the policy's delete ledger says so — drop it) or a
            // blob it is the *sole holder* of, written while every other
            // level was down — mirror that back out instead of destroying
            // the only copy.
            if let Some(r) = ref_level {
                let reference_store = self.shared.levels[r].store();
                let deleted = {
                    let state = self.shared.state.lock().unwrap();
                    state.deleted_blobs.clone()
                };
                let ok = (|| -> io::Result<()> {
                    let want: BTreeSet<String> =
                        reference_store.list_blobs()?.into_iter().collect();
                    let have: BTreeSet<String> = level.store().list_blobs()?.into_iter().collect();
                    for name in &want {
                        if let Some(data) = reference_store.get_blob(name)? {
                            level.store().put_blob(name, &data)?;
                        }
                    }
                    for name in have.difference(&want) {
                        if deleted.contains(name) {
                            level.store().delete_blob(name)?;
                        } else if let Some(data) = level.store().get_blob(name)? {
                            for (o, other) in self.shared.levels.iter().enumerate() {
                                if o != l && !other.is_suspect() {
                                    other.store().put_blob(name, &data)?;
                                }
                            }
                        }
                    }
                    Ok(())
                })();
                if ok.is_err() {
                    continue;
                }
            }
            // Re-queue deferred copies as rebuilds, plus anything the
            // level is missing against the reference window.
            let mut state = self.shared.state.lock().unwrap();
            let mut wanted: BTreeSet<u64> = reference
                .iter()
                .copied()
                .filter(|e| !retired_snapshot.contains(e))
                .collect();
            if level.capacity > 0 && l != self.last_level() {
                // Capacity-bounded levels only hold the newest window —
                // do not resurrect epochs the policy already evicted.
                while wanted.len() > level.capacity {
                    let oldest = *wanted.iter().next().unwrap();
                    wanted.remove(&oldest);
                }
            }
            let queued: BTreeSet<u64> = state.queues[l].iter().map(|&(e, _)| e).collect();
            let mut merged: BTreeMap<u64, CopyKind> = BTreeMap::new();
            for &(e, kind) in state.queues[l].iter() {
                merged.insert(e, kind);
            }
            for &(e, _) in state.deferred[l].iter() {
                merged.entry(e).or_insert(CopyKind::Rebuild);
            }
            for e in wanted {
                if !present.contains(&e) && !queued.contains(&e) {
                    merged.entry(e).or_insert(CopyKind::Rebuild);
                }
            }
            state.queues[l] = merged
                .into_iter()
                .filter(|(e, _)| !present.contains(e))
                .collect();
            state.deferred[l].clear();
            level.suspect.store(false, Ordering::SeqCst);
        }
        // Once every level is back in service all recorded deletions have
        // been applied everywhere; a level that misses a future delete is
        // marked suspect by `delete_blob` itself, so the ledger can only
        // be pruned when nothing is pending.
        if self.shared.levels.iter().all(|l| !l.is_suspect()) {
            let mut state = self.shared.state.lock().unwrap();
            state.deleted_blobs.clear();
        }
    }

    /// One copy step: pick the smallest pending epoch across level
    /// queues, copy it in, apply capacity eviction. Caller holds
    /// `drain_lock`.
    fn copy_step(&self) -> io::Result<Option<u64>> {
        loop {
            let picked = {
                let mut state = self.shared.state.lock().unwrap();
                let mut best: Option<(u64, usize)> = None;
                for (l, queue) in state.queues.iter().enumerate() {
                    if self.shared.levels[l].is_suspect() {
                        continue;
                    }
                    if let Some(&(epoch, _)) = queue.front() {
                        if best.map(|(e, _)| epoch < e).unwrap_or(true) {
                            best = Some((epoch, l));
                        }
                    }
                }
                match best {
                    Some((_, l)) => state.queues[l].pop_front().map(|item| (l, item)),
                    None => None,
                }
            };
            let Some((dest, (epoch, kind))) = picked else {
                return Ok(None);
            };
            // Retired while queued: drop silently.
            if self.shared.state.lock().unwrap().retired.contains(&epoch) {
                continue;
            }
            let level = &self.shared.levels[dest];
            let dest_store = level.store();
            // Already there (reconcile raced a queued drain): done.
            match dest_store.epochs() {
                Ok(eps) if eps.contains(&epoch) => {
                    self.evict_over_capacity();
                    return Ok(Some(epoch));
                }
                Ok(_) => {}
                Err(e) => {
                    self.park(dest, epoch, kind);
                    return Err(e);
                }
            }
            // The destination burned this epoch number (it held and then
            // evicted it): it can never be re-committed there. Leave it
            // to the other levels.
            if let Ok(Some(hw)) = dest_store.high_water() {
                if hw >= epoch {
                    continue;
                }
            }
            // Source: lowest alive level that still holds the epoch.
            // Transient read hiccups are retried with backoff before the
            // level is written off as suspect.
            let retry = self.retry_policy();
            let mut records: Option<Vec<(u64, Vec<u8>)>> = None;
            let mut last_err: Option<io::Error> = None;
            for (src, source) in self.shared.levels.iter().enumerate() {
                if src == dest || source.is_suspect() {
                    continue;
                }
                match retry.run(|| try_read_epoch(source.store(), epoch)) {
                    Ok(Some(recs)) => {
                        records = Some(recs);
                        break;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        source
                            .counters
                            .read_fallthroughs
                            .fetch_add(1, Ordering::SeqCst);
                        source.suspect.store(true, Ordering::SeqCst);
                        last_err = Some(e);
                    }
                }
            }
            let Some(records) = records else {
                // No readable source right now. Put the item back at the
                // front (order preserved) and surface the error so the
                // maintenance worker backs off and retries.
                let mut state = self.shared.state.lock().unwrap();
                state.queues[dest].push_front((epoch, kind));
                return Err(last_err.unwrap_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no level holds epoch {epoch} to copy from"),
                    )
                }));
            };
            // Copy through the destination's protection wrapper. Each
            // step retries transient faults independently (a burst on
            // `finish` must not replay `begin_epoch` against a
            // half-written epoch); permanent faults still park the item
            // and mark the destination suspect exactly as before.
            let outcome = (|| -> io::Result<u64> {
                let writer = retry.run(|| dest_store.begin_epoch(epoch))?;
                let mut bytes = 0u64;
                for (page, data) in &records {
                    retry.run(|| writer.write_pages(&[(*page, data.as_slice())]))?;
                    bytes += data.len() as u64;
                }
                retry.run(|| writer.finish())?;
                Ok(bytes)
            })();
            match outcome {
                Ok(bytes) => {
                    let c = &level.counters;
                    c.copy_bytes.fetch_add(bytes, Ordering::SeqCst);
                    match kind {
                        CopyKind::Drain => c.drains_in.fetch_add(1, Ordering::SeqCst),
                        CopyKind::Rebuild => c.rebuilds_in.fetch_add(1, Ordering::SeqCst),
                    };
                    self.evict_over_capacity();
                    return Ok(Some(epoch));
                }
                Err(e) => {
                    level.counters.copy_failures.fetch_add(1, Ordering::SeqCst);
                    self.park(dest, epoch, kind);
                    return Err(e);
                }
            }
        }
    }

    /// Run one level's read with the fault taxonomy applied: transient
    /// errors retry with backoff, and a *corrupt* result triggers the
    /// level's own in-place repair (replica member, XOR group) followed by
    /// one final attempt. A level that cannot repair keeps its original
    /// error and the caller falls through to the next level — degraded
    /// reads never got worse, they just heal in place when they can.
    fn level_read<T>(
        &self,
        level: &Level,
        epoch: u64,
        op: impl Fn() -> io::Result<T>,
    ) -> io::Result<T> {
        match self.retry_policy().run(&op) {
            Err(e) if classify(&e) == FaultClass::Corrupt => {
                if level.store().repair_epoch(epoch).is_ok() {
                    op()
                } else {
                    Err(e)
                }
            }
            other => other,
        }
    }

    /// Park a failed copy on the destination's deferred list and mark the
    /// level suspect (reconciled once it answers a probe again).
    fn park(&self, dest: usize, epoch: u64, kind: CopyKind) {
        self.shared.levels[dest]
            .suspect
            .store(true, Ordering::SeqCst);
        let mut state = self.shared.state.lock().unwrap();
        state.deferred[dest].push((epoch, kind));
    }

    /// Evict over-capacity epochs (oldest first) from bounded levels —
    /// only once a higher (slower) alive level holds the epoch.
    fn evict_over_capacity(&self) {
        let last = self.last_level();
        for (l, level) in self.shared.levels.iter().enumerate() {
            if l == last || level.capacity == 0 || level.is_suspect() {
                continue;
            }
            let Ok(mut present) = level.store().epochs() else {
                continue;
            };
            present.sort_unstable();
            let mut idx = 0;
            while present.len() - idx > level.capacity && idx < present.len() {
                let oldest = present[idx];
                let held_higher = self.shared.levels[l + 1..].iter().any(|higher| {
                    !higher.is_suspect()
                        && higher
                            .store()
                            .epochs()
                            .map(|eps| eps.contains(&oldest))
                            .unwrap_or(false)
                });
                if !held_higher {
                    break; // never drop the sole durable copy
                }
                if level.store().remove_epoch(oldest).is_err() {
                    break;
                }
                level.counters.evictions.fetch_add(1, Ordering::SeqCst);
                idx += 1;
            }
        }
    }
}

struct PolicyWriter {
    shared: Arc<Shared>,
    inner: Box<dyn EpochWriter>,
    epoch: u64,
}

impl EpochWriter for PolicyWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        self.inner.write_pages(batch)
    }

    fn finish(&self) -> io::Result<()> {
        self.inner.finish()?;
        let mut state = self.shared.state.lock().unwrap();
        state.high_water = state.high_water.max(Some(self.epoch));
        for l in 1..self.shared.levels.len() {
            state.queues[l].push_back((self.epoch, CopyKind::Drain));
        }
        Ok(())
    }

    fn abort(&self) -> io::Result<()> {
        self.inner.abort()
    }
}

impl StorageBackend for PolicyBackend {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        {
            let state = self.shared.state.lock().unwrap();
            if let Some(hw) = state.high_water {
                if epoch <= hw {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("epoch {epoch} not above policy high water {hw}"),
                    ));
                }
            }
        }
        let inner = self.shared.levels[0].store().begin_epoch(epoch)?;
        Ok(Box::new(PolicyWriter {
            shared: Arc::clone(&self.shared),
            inner,
            epoch,
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut wrote = false;
        let mut last_err = None;
        for level in &self.shared.levels {
            match level.store().put_blob(name, data) {
                Ok(()) => wrote = true,
                Err(e) => {
                    level.suspect.store(true, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        if wrote {
            // A re-created name is no longer deleted: reconcile must copy
            // it toward healing levels, not scrub it off them.
            let mut state = self.shared.state.lock().unwrap();
            state.deleted_blobs.remove(name);
            Ok(())
        } else {
            Err(last_err.unwrap())
        }
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let mut last_err = None;
        let mut any_ok = false;
        for level in &self.shared.levels {
            match level.store().get_blob(name) {
                Ok(Some(data)) => {
                    level.counters.read_hits.fetch_add(1, Ordering::SeqCst);
                    return Ok(Some(data));
                }
                Ok(None) => any_ok = true,
                Err(e) => {
                    level
                        .counters
                        .read_fallthroughs
                        .fetch_add(1, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        if any_ok {
            Ok(None)
        } else {
            Err(last_err.unwrap())
        }
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        let mut union = BTreeSet::new();
        let mut any_ok = false;
        let mut last_err = None;
        for level in &self.shared.levels {
            match level.store().epochs() {
                Ok(eps) => {
                    union.extend(eps);
                    any_ok = true;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            // A healed level that has not been reconciled yet may still
            // hold epochs retired while it was down — never list them.
            let state = self.shared.state.lock().unwrap();
            Ok(union
                .into_iter()
                .filter(|e| !state.retired.contains(e))
                .collect())
        } else {
            Err(last_err.unwrap())
        }
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        let mut hw = self.shared.state.lock().unwrap().high_water;
        for level in &self.shared.levels {
            if let Ok(level_hw) = level.store().high_water() {
                hw = hw.max(level_hw);
            }
        }
        Ok(hw)
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        let mut last_err = None;
        for level in &self.shared.levels {
            // Buffer before replay so a level failing mid-stream never
            // leaks a partial visit to the caller.
            match self.level_read(level, epoch, || try_read_epoch(level.store(), epoch)) {
                Ok(Some(records)) => {
                    level.counters.read_hits.fetch_add(1, Ordering::SeqCst);
                    for (page, data) in records {
                        visit(page, &data);
                    }
                    return Ok(());
                }
                Ok(None) => {}
                Err(e) => {
                    level
                        .counters
                        .read_fallthroughs
                        .fetch_add(1, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("epoch {epoch} not found on any level"),
            )
        }))
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        let mut last_err = None;
        for level in &self.shared.levels {
            let holds = match level.store().epochs() {
                Ok(eps) => eps.contains(&epoch),
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            if !holds {
                continue;
            }
            match self.level_read(level, epoch, || level.store().epoch_page_ids(epoch)) {
                Ok(ids) => {
                    level.counters.read_hits.fetch_add(1, Ordering::SeqCst);
                    return Ok(ids);
                }
                Err(e) => {
                    level
                        .counters
                        .read_fallthroughs
                        .fetch_add(1, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("epoch {epoch} not found on any level"),
            )
        }))
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        let mut last_err = None;
        for level in &self.shared.levels {
            let holds = match level.store().epochs() {
                Ok(eps) => eps.contains(&epoch),
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            if !holds {
                continue;
            }
            // Inside a parity level this already reconstructs a corrupt
            // record from its XOR group before we ever fall through.
            match self.level_read(level, epoch, || level.store().read_page_at(epoch, page)) {
                Ok(hit) => {
                    level.counters.read_hits.fetch_add(1, Ordering::SeqCst);
                    return Ok(hit);
                }
                Err(e) => {
                    level
                        .counters
                        .read_fallthroughs
                        .fetch_add(1, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("epoch {epoch} not found on any level"),
            )
        }))
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        let mut deleted = false;
        let mut last_err = None;
        for level in &self.shared.levels {
            match level.store().delete_blob(name) {
                Ok(()) => deleted = true,
                Err(e) => {
                    level.suspect.store(true, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        if deleted {
            // Remember the deletion so a level that slept through it drops
            // the blob on reconcile instead of resurrecting it.
            let mut state = self.shared.state.lock().unwrap();
            state.deleted_blobs.insert(name.to_string());
            Ok(())
        } else {
            Err(last_err.unwrap())
        }
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        let mut union = BTreeSet::new();
        let mut any_ok = false;
        let mut last_err = None;
        for level in &self.shared.levels {
            match level.store().list_blobs() {
                Ok(names) => {
                    union.extend(names);
                    any_ok = true;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            Ok(union.into_iter().collect())
        } else {
            Err(last_err.unwrap())
        }
    }

    fn bytes_written(&self) -> u64 {
        // Logical ingest: what the application committed, not the N
        // redundant copies maintenance fanned out.
        self.shared.levels[0].store().bytes_written()
    }

    fn bytes_stored(&self) -> u64 {
        self.shared.levels[0].store().bytes_stored()
    }

    fn chain(&self) -> io::Result<Vec<ChainEntry>> {
        let mut merged: BTreeMap<u64, EpochKind> = BTreeMap::new();
        let mut any_ok = false;
        let mut last_err = None;
        for level in &self.shared.levels {
            match level.store().chain() {
                Ok(chain) => {
                    any_ok = true;
                    for entry in chain {
                        let kind = merged.entry(entry.epoch).or_insert(entry.kind);
                        if entry.kind == EpochKind::Full {
                            *kind = EpochKind::Full;
                        }
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        if any_ok {
            let state = self.shared.state.lock().unwrap();
            Ok(merged
                .into_iter()
                .filter(|(epoch, _)| !state.retired.contains(epoch))
                .map(|(epoch, kind)| ChainEntry { epoch, kind })
                .collect())
        } else {
            Err(last_err.unwrap())
        }
    }

    fn compact(&self, up_to: u64) -> io::Result<CompactionStats> {
        // Compaction rewrites every level's chain; doing that while
        // copies toward `up_to` are still owed would destroy the only
        // consistent source. Drain first, cleanly, or refuse.
        let _drain = self.shared.drain_lock.lock().unwrap();
        self.reconcile_suspects();
        loop {
            let pending = {
                let state = self.shared.state.lock().unwrap();
                state
                    .queues
                    .iter()
                    .any(|q| q.front().map(|&(e, _)| e <= up_to).unwrap_or(false))
            };
            if !pending {
                break;
            }
            if let Err(e) = self.copy_step() {
                return Err(io::Error::new(
                    e.kind(),
                    format!("compact({up_to}) requires full redundancy: {e}"),
                ));
            }
        }
        {
            let state = self.shared.state.lock().unwrap();
            if state
                .deferred
                .iter()
                .any(|d| d.iter().any(|&(e, _)| e <= up_to))
            {
                return Err(io::Error::other(format!(
                    "compact({up_to}) requires full redundancy: \
                     copies deferred to a down level"
                )));
            }
        }
        let mut stats: Option<CompactionStats> = None;
        let mut last_err = None;
        for level in &self.shared.levels {
            if level.is_suspect() {
                continue;
            }
            let holds = level
                .store()
                .epochs()
                .map(|eps| eps.contains(&up_to))
                .unwrap_or(false);
            if !holds {
                continue; // e.g. capacity-evicted past the fold point
            }
            match level.store().compact(up_to) {
                Ok(s) => {
                    if stats.is_none() {
                        stats = Some(s);
                    }
                }
                Err(e) => {
                    level.suspect.store(true, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        match (stats, last_err) {
            (Some(s), None) => Ok(s),
            (_, Some(e)) => Err(e),
            (None, None) => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("compact({up_to}): no live epoch at or below it"),
            )),
        }
    }

    fn supports_compaction(&self) -> bool {
        self.shared
            .levels
            .iter()
            .all(|l| l.store().supports_compaction())
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        let mut last_err = None;
        for level in &self.shared.levels {
            if let Err(e) = level.store().install_compacted(from, into, records) {
                level.suspect.store(true, Ordering::SeqCst);
                last_err = Some(e);
            }
        }
        last_err.map_or(Ok(()), Err)
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        let mut last_err = None;
        for level in &self.shared.levels {
            if level.is_suspect() {
                continue; // cleaned up on reconcile via the retired set
            }
            match level.store().epochs() {
                Ok(eps) if eps.contains(&epoch) => {
                    if let Err(e) = level.store().remove_epoch(epoch) {
                        level.suspect.store(true, Ordering::SeqCst);
                        last_err = Some(e);
                    }
                }
                Ok(_) => {}
                Err(_) => {
                    // The level is down: it cannot act now, but the
                    // retired set below guarantees the epoch is dropped
                    // when it reconciles — not an error for the caller.
                    level.suspect.store(true, Ordering::SeqCst);
                }
            }
        }
        let mut state = self.shared.state.lock().unwrap();
        state.retired.insert(epoch);
        for queue in &mut state.queues {
            queue.retain(|&(e, _)| e != epoch);
        }
        for deferred in &mut state.deferred {
            deferred.retain(|&(e, _)| e != epoch);
        }
        last_err.map_or(Ok(()), Err)
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        for &epoch in epochs {
            self.remove_epoch(epoch)?;
        }
        Ok(())
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        let _drain = self.shared.drain_lock.lock().unwrap();
        self.reconcile_suspects();
        self.copy_step()
    }

    fn drain_backlog(&self) -> usize {
        // Probe-and-reconcile here too: the maintenance barrier seeds its
        // queue from this count, so a healed level's rebuild work becomes
        // visible on the next barrier without any drain having run.
        // Deferred items are *excluded* — they cannot make progress until
        // their level answers a probe, and counting them would wedge the
        // barrier against a dead level forever.
        let _drain = self.shared.drain_lock.lock().unwrap();
        self.reconcile_suspects();
        let state = self.shared.state.lock().unwrap();
        state.queues.iter().map(|q| q.len()).sum()
    }

    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        // Union of the damage across every alive level that holds the
        // epoch. Suspect levels are skipped — their copies are rebuilt
        // wholesale on reconcile, not patched record-by-record — and a
        // level that errors mid-verify contributes its error only if no
        // level could be verified at all.
        let mut merged: Option<VerifyReport> = None;
        let mut last_err = None;
        for level in &self.shared.levels {
            if level.is_suspect() {
                continue;
            }
            let holds = match level.store().epochs() {
                Ok(eps) => eps.contains(&epoch),
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            if !holds {
                continue;
            }
            match level.store().verify_epoch(epoch) {
                Ok(report) => match &mut merged {
                    Some(m) => m.merge(&report),
                    None => merged = Some(report),
                },
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => last_err = Some(e),
            }
        }
        match (merged, last_err) {
            (Some(m), _) => Ok(m),
            (None, Some(e)) => Err(e),
            (None, None) => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("epoch {epoch} not found on any level"),
            )),
        }
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        // Rewrite every alive holder. A level that fails the rewrite is
        // marked suspect: reconcile rebuilds it wholesale from a clean
        // peer, which is itself a repair.
        let mut rewrote = false;
        let mut last_err = None;
        for level in &self.shared.levels {
            if level.is_suspect() {
                continue;
            }
            let holds = level
                .store()
                .epochs()
                .map(|eps| eps.contains(&epoch))
                .unwrap_or(false);
            if !holds {
                continue;
            }
            match level.store().rewrite_epoch(epoch, records) {
                Ok(()) => rewrote = true,
                Err(e) => {
                    level.suspect.store(true, Ordering::SeqCst);
                    last_err = Some(e);
                }
            }
        }
        if rewrote {
            Ok(())
        } else {
            Err(last_err.unwrap_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("epoch {epoch} not found on any level"),
                )
            }))
        }
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        // Source-select, fastest-first: each damaged level first tries its
        // own intra-level redundancy (replica member, XOR group); a level
        // that cannot self-heal is rewritten wholesale from the lowest
        // level that verifies clean. Only when *no* level holds a healthy
        // image does the repair fail — and the scrubber quarantines.
        let mut damaged: Vec<usize> = Vec::new();
        let mut clean: Vec<usize> = Vec::new();
        let mut pages: Vec<u64> = Vec::new();
        for (l, level) in self.shared.levels.iter().enumerate() {
            if level.is_suspect() {
                continue;
            }
            let holds = level
                .store()
                .epochs()
                .map(|eps| eps.contains(&epoch))
                .unwrap_or(false);
            if !holds {
                continue;
            }
            match level.store().verify_epoch(epoch) {
                Ok(r) if r.is_clean() => clean.push(l),
                Ok(r) => {
                    for &p in &r.corrupt_pages {
                        if !pages.contains(&p) {
                            pages.push(p);
                        }
                    }
                    damaged.push(l);
                }
                Err(_) => {}
            }
        }
        if damaged.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("epoch {epoch} verifies clean on every level; nothing to repair"),
            ));
        }
        // Pass 1: intra-level self-heal (a replica member, an XOR group).
        // A level that heals itself becomes a source for pass 2 — so a
        // parity level surviving single-record rot can resurrect levels
        // with no redundancy of their own.
        let mut sources: Vec<String> = Vec::new();
        let mut still_damaged: Vec<usize> = Vec::new();
        for &l in &damaged {
            let level = &self.shared.levels[l];
            let self_healed = level.store().repair_epoch(epoch).ok().filter(|_| {
                // Trust but verify before using it as a source.
                level
                    .store()
                    .verify_epoch(epoch)
                    .map(|after| after.is_clean())
                    .unwrap_or(false)
            });
            match self_healed {
                Some(rep) => {
                    sources.push(format!("level {} ({})", level.name, rep.source));
                    clean.push(l);
                }
                None => still_damaged.push(l),
            }
        }
        clean.sort_unstable(); // prefer the fastest clean level as source
                               // Pass 2: rewrite what remains from the fastest clean image.
        for &l in &still_damaged {
            let level = &self.shared.levels[l];
            let mut healed_from = None;
            for &src in &clean {
                if let Ok(Some(records)) = try_read_epoch(self.shared.levels[src].store(), epoch) {
                    level.store().rewrite_epoch(epoch, &records)?;
                    healed_from = Some(src);
                    break;
                }
            }
            let Some(src) = healed_from else {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!(
                        "no surviving source to repair epoch {epoch}: \
                         level {} is damaged and no level verifies clean",
                        level.name
                    ),
                ));
            };
            sources.push(format!("level {}", self.shared.levels[src].name));
        }
        Ok(RepairReport {
            epoch,
            pages,
            rewrote_segment: true,
            source: sources.join(", "),
        })
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        let mut last_err = None;
        for level in &self.shared.levels {
            if level.is_suspect() {
                continue;
            }
            let holds = level
                .store()
                .epochs()
                .map(|eps| eps.contains(&epoch))
                .unwrap_or(false);
            if !holds {
                continue;
            }
            match level.store().record_meta(epoch, page) {
                Ok(meta) => return Ok(meta),
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for level in &self.shared.levels {
            total = total.merged(level.store().io_stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::memory::MemoryBackend;

    const SPEC: &str = "nvme=plain#2 -> partner=replica*2 -> cold=parity*4";

    fn build_injected(spec: &str) -> (PolicyBackend, Vec<FailureControl>) {
        PolicyBuilder::new(ResilienceSpec::parse(spec).unwrap())
            .unwrap()
            .build_injected(|_, _| Box::new(MemoryBackend::new()))
            .unwrap()
    }

    fn drain_all(policy: &PolicyBackend) {
        for _ in 0..64 {
            match policy.drain_one() {
                Ok(Some(_)) => {}
                Ok(None) => return,
                Err(e) => panic!("drain failed: {e}"),
            }
        }
        panic!("drain did not converge");
    }

    fn epoch_pages(epoch: u64) -> Vec<(u64, Vec<u8>)> {
        (0..6u64)
            .map(|p| (p, vec![(epoch as u8) ^ (p as u8); 32]))
            .collect()
    }

    #[test]
    fn spec_grammar_round_trips_and_rejects_garbage() {
        let spec = ResilienceSpec::parse(SPEC).unwrap();
        assert_eq!(spec.levels.len(), 3);
        assert_eq!(spec.levels[0].capacity, 2);
        assert_eq!(
            spec.levels[1].protection,
            LevelProtection::Replicated { copies: 2 }
        );
        assert_eq!(
            spec.levels[2].protection,
            LevelProtection::Parity { group: 4 }
        );
        assert_eq!(ResilienceSpec::parse(&spec.to_spec_string()).unwrap(), spec);

        for bad in [
            "",
            "a=plain -> ",
            "nameless",
            "x=replica*1",
            "x=parity*1",
            "x=warp*3",
            "x=plain#lots",
            "dup=plain -> dup=plain",
        ] {
            assert!(
                ResilienceSpec::parse(bad).is_err(),
                "spec {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn drain_copies_epochs_outward_and_capacity_evicts() {
        let (policy, _controls) = build_injected(SPEC);
        for epoch in 1..=4u64 {
            write_epoch(&policy, epoch, epoch_pages(epoch)).unwrap();
        }
        assert_eq!(policy.drain_backlog(), 8, "4 epochs x 2 outer levels");
        drain_all(&policy);
        assert_eq!(policy.drain_backlog(), 0);
        let stats = policy.stats();
        // Level 0 holds only the newest 2 epochs (capacity), outer levels
        // hold everything.
        assert_eq!(stats.levels[0].resident_epochs, 2);
        assert_eq!(stats.levels[0].evictions, 2);
        assert_eq!(stats.levels[1].resident_epochs, 4);
        assert_eq!(stats.levels[2].resident_epochs, 4);
        assert_eq!(stats.levels[1].drains_in, 4);
        assert_eq!(stats.levels[2].drains_in, 4);
        assert_eq!(policy.epochs().unwrap(), vec![1, 2, 3, 4]);
        // An evicted epoch still reads — from the outer levels.
        let mut seen = Vec::new();
        policy
            .read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, epoch_pages(1));
    }

    #[test]
    fn begin_epoch_enforces_policy_wide_monotonicity() {
        let (policy, _controls) = build_injected(SPEC);
        write_epoch(&policy, 3, epoch_pages(3)).unwrap();
        let err = match policy.begin_epoch(3) {
            Err(e) => e,
            Ok(_) => panic!("re-using epoch 3 must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        write_epoch(&policy, 4, epoch_pages(4)).unwrap();
    }

    #[test]
    fn killed_level_defers_copies_then_heals_into_rebuilds() {
        let (policy, controls) = build_injected(SPEC);
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        drain_all(&policy);

        controls[1].kill();
        write_epoch(&policy, 2, epoch_pages(2)).unwrap();
        // Copy toward the dead partner level fails and parks.
        let mut deferred = 0;
        for _ in 0..8 {
            match policy.drain_one() {
                Ok(Some(_)) | Ok(None) => {}
                Err(_) => deferred += 1,
            }
            if policy.drain_backlog() == 0 {
                break;
            }
        }
        assert!(deferred >= 1, "copy into the killed level must fail");
        let stats = policy.stats();
        assert!(stats.levels[1].suspect);
        assert_eq!(stats.levels[1].deferred, 1);
        // The cold level still got its copy; reads fall through.
        assert_eq!(policy.epochs().unwrap(), vec![1, 2]);

        controls[1].heal();
        // The next backlog probe reconciles the level and exposes the
        // rebuild work; draining completes it.
        assert!(policy.drain_backlog() >= 1);
        drain_all(&policy);
        let stats = policy.stats();
        assert!(!stats.levels[1].suspect);
        assert_eq!(stats.levels[1].deferred, 0);
        assert_eq!(stats.levels[1].rebuilds_in, 1);
        assert_eq!(stats.levels[1].resident_epochs, 2);
    }

    #[test]
    fn reads_fall_through_a_killed_fast_level() {
        let (policy, controls) = build_injected(SPEC);
        for epoch in 1..=2u64 {
            write_epoch(&policy, epoch, epoch_pages(epoch)).unwrap();
        }
        drain_all(&policy);
        controls[0].kill();
        assert_eq!(policy.epochs().unwrap(), vec![1, 2]);
        let mut seen = Vec::new();
        policy
            .read_epoch(2, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, epoch_pages(2));
        assert_eq!(
            policy.read_page_at(2, 3).unwrap().unwrap(),
            epoch_pages(2)[3].1
        );
        assert_eq!(policy.epoch_page_ids(2).unwrap(), vec![0, 1, 2, 3, 4, 5]);
        let stats = policy.stats();
        assert!(stats.levels[1].read_hits > 0, "partner level served reads");

        // Kill the partner too: the parity cold level is the last line.
        controls[1].kill();
        let mut seen = Vec::new();
        policy
            .read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, epoch_pages(1));

        // All levels dead: reads error instead of lying.
        controls[2].kill();
        assert!(policy.read_page_at(1, 0).is_err());
        assert!(policy.epochs().is_err());
    }

    #[test]
    fn blobs_mirror_to_all_levels_and_reconcile_after_heal() {
        let (policy, controls) = build_injected(SPEC);
        policy.put_blob("layout_0000000001", b"v1").unwrap();
        controls[2].kill();
        policy.put_blob("layout_0000000002", b"v2").unwrap();
        policy.delete_blob("layout_0000000001").unwrap();
        controls[2].heal();
        // A drain tick reconciles the cold level's blob namespace.
        policy.drain_backlog();
        assert_eq!(policy.list_blobs().unwrap(), vec!["layout_0000000002"]);
        assert!(!policy.stats().levels[2].suspect);
        // Read the blob with only the healed level alive: it must hold
        // the mirrored copy.
        controls[0].kill();
        controls[1].kill();
        assert_eq!(
            policy.get_blob("layout_0000000002").unwrap().unwrap(),
            b"v2"
        );
        assert_eq!(policy.get_blob("layout_0000000001").unwrap(), None);
    }

    #[test]
    fn retirement_while_a_level_is_down_sticks_after_heal() {
        let (policy, controls) = build_injected(SPEC);
        for epoch in 1..=3u64 {
            write_epoch(&policy, epoch, epoch_pages(epoch)).unwrap();
        }
        drain_all(&policy);
        controls[1].kill();
        policy.remove_epoch(1).unwrap();
        controls[1].heal();
        policy.drain_backlog();
        assert_eq!(policy.epochs().unwrap(), vec![2, 3]);
        // Kill everything but the healed level: epoch 1 must be gone
        // there too, not resurrected.
        controls[0].kill();
        controls[2].kill();
        assert_eq!(policy.epochs().unwrap(), vec![2, 3]);
    }

    #[test]
    fn compact_refuses_while_degraded_then_folds_after_heal() {
        let (policy, controls) = build_injected(SPEC);
        for epoch in 1..=3u64 {
            write_epoch(&policy, epoch, epoch_pages(epoch)).unwrap();
        }
        controls[2].kill();
        let err = policy.compact(3).unwrap_err();
        assert!(
            err.to_string().contains("full redundancy"),
            "unexpected error: {err}"
        );
        controls[2].heal();
        drain_all(&policy);
        let stats = policy.compact(3).unwrap();
        assert_eq!(stats.into, 3);
        assert!(stats.segments_removed > 0);
        let chain = policy.chain().unwrap();
        assert_eq!(chain.last().unwrap().kind, EpochKind::Full);
        // Restore is byte-identical post-compaction from any single level.
        for dead in [[0usize, 1], [0, 2], [1, 2]] {
            let mut seen = std::collections::BTreeMap::new();
            for &l in &dead {
                controls[l].kill();
            }
            policy
                .read_epoch(3, &mut |p, d| {
                    seen.insert(p, d.to_vec());
                })
                .unwrap();
            for (p, d) in epoch_pages(3) {
                assert_eq!(seen.get(&p), Some(&d), "page {p} after killing {dead:?}");
            }
            for &l in &dead {
                controls[l].heal();
            }
            policy.drain_backlog();
        }
    }

    /// A wrapper that reports `InvalidData` for one page id — the parity
    /// level must reconstruct that page from its XOR group instead of
    /// falling through.
    struct CorruptPage<B> {
        inner: B,
        page: u64,
    }

    impl<B: StorageBackend> StorageBackend for CorruptPage<B> {
        fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
            self.inner.begin_epoch(epoch)
        }
        fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
            self.inner.put_blob(name, data)
        }
        fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
            self.inner.get_blob(name)
        }
        fn epochs(&self) -> io::Result<Vec<u64>> {
            self.inner.epochs()
        }
        fn high_water(&self) -> io::Result<Option<u64>> {
            self.inner.high_water()
        }
        fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
            self.inner.read_epoch(epoch, visit)
        }
        fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
            self.inner.epoch_page_ids(epoch)
        }
        fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
            if page == self.page {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "injected corrupt record",
                ));
            }
            self.inner.read_page_at(epoch, page)
        }
        fn bytes_written(&self) -> u64 {
            self.inner.bytes_written()
        }
        fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
            self.inner.remove_epoch(epoch)
        }
    }

    #[test]
    fn parity_level_reconstructs_a_corrupt_record_in_place() {
        let spec = ResilienceSpec::parse("hot=plain -> cold=parity*3").unwrap();
        let policy = PolicyBuilder::new(spec)
            .unwrap()
            .build(|level, _| {
                if level == 1 {
                    Box::new(CorruptPage {
                        inner: MemoryBackend::new(),
                        page: 2,
                    })
                } else {
                    Box::new(MemoryBackend::new())
                }
            })
            .unwrap();
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        drain_all(&policy);
        assert_eq!(policy.stats().levels[1].drains_in, 1);
        // Ask the parity level's protection view for the corrupt page:
        // `ParityBackend::read_page_at` must reconstruct it from the XOR
        // group instead of surfacing `InvalidData` to the policy.
        let parity_view = policy.shared.levels[1].store();
        let want = epoch_pages(1);
        assert_eq!(
            parity_view.read_page_at(1, 2).unwrap().unwrap(),
            want[2].1,
            "corrupt record reconstructed from its XOR group"
        );
    }

    #[test]
    fn source_loss_surfaces_an_error_and_retries_after_heal() {
        let (policy, controls) = build_injected(SPEC);
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        // Kill the only source (level 0) before any copy happened.
        controls[0].kill();
        let err = policy.drain_one().unwrap_err();
        assert!(err.to_string().contains("injected") || err.kind() == io::ErrorKind::NotFound);
        // Nothing was lost: the item is still owed.
        assert!(policy.copies_owed() >= 2);
        controls[0].heal();
        drain_all(&policy);
        assert_eq!(policy.stats().levels[1].resident_epochs, 1);
        assert_eq!(policy.stats().levels[2].resident_epochs, 1);
    }

    #[test]
    fn transient_drain_burst_is_absorbed_by_retry() {
        use crate::failing::FaultOp;
        let (policy, controls) = build_injected(SPEC);
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        // Two EINTR-shaped hiccups on the cold level's commit barrier:
        // within the default 4-attempt budget, so the copy lands without
        // the level ever being marked suspect or the item parked.
        controls[2].fail_next_n(FaultOp::Finish, 2);
        drain_all(&policy);
        let stats = policy.stats();
        assert!(!stats.levels[2].suspect, "transient faults never park");
        assert_eq!(stats.levels[2].copy_failures, 0);
        assert_eq!(stats.levels[2].drains_in, 1);
        assert_eq!(controls[2].transient_remaining(FaultOp::Finish), 0);

        // A burst longer than the attempt budget degrades into exactly
        // the old suspect/deferred semantics at the moment it fails...
        controls[2].fail_next_n(FaultOp::BeginEpoch, 16);
        write_epoch(&policy, 2, epoch_pages(2)).unwrap();
        let mut failed = false;
        for _ in 0..8 {
            match policy.drain_one() {
                Err(e) => {
                    failed = true;
                    assert_eq!(classify(&e), FaultClass::Transient);
                    assert!(policy.stats().levels[2].suspect, "over-budget parks");
                    break;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
            }
        }
        assert!(failed, "an over-budget burst still surfaces");
        // ...and because the fault is self-healing, the normal
        // probe/reconcile cycle converges without any explicit heal.
        for _ in 0..8 {
            let _ = policy.drain_one();
        }
        drain_all(&policy);
        assert!(!policy.stats().levels[2].suspect);
        assert_eq!(policy.stats().levels[2].resident_epochs, 2);
    }

    #[test]
    fn verify_merges_damage_and_repair_heals_across_levels() {
        let (policy, controls) = build_injected(SPEC);
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        drain_all(&policy);
        // Rot one record at rest on the plain fast level. The level has no
        // redundancy of its own — repair must source from a peer level.
        controls[0].corrupt_read_payload(1, 2, 40);
        let report = policy.verify_epoch(1).unwrap();
        assert_eq!(report.corrupt_pages, vec![2]);
        let rep = policy.repair_epoch(1).unwrap();
        assert!(rep.rewrote_segment);
        assert_eq!(rep.pages, vec![2]);
        assert!(
            rep.source.contains("partner"),
            "healed from the replica level, got {:?}",
            rep.source
        );
        assert_eq!(controls[0].corruptions_armed(), 0, "rewrite cleared rot");
        assert!(policy.verify_epoch(1).unwrap().is_clean());
        assert_eq!(
            policy.read_page_at(1, 2).unwrap().unwrap(),
            epoch_pages(1)[2].1
        );
    }

    #[test]
    fn self_healed_parity_level_rescues_the_plain_level() {
        let (policy, controls) = build_injected(SPEC);
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        drain_all(&policy);
        // Kill the replica level so the only clean source candidates are
        // the two damaged ones: the parity level must first heal itself
        // (XOR group), then serve as the source for the plain level.
        controls[1].kill();
        controls[0].corrupt_read_payload(1, 2, 0);
        controls[2].corrupt_read_payload(1, 3, 0);
        let rep = policy.repair_epoch(1).unwrap();
        assert!(
            rep.source.contains("cold") && rep.source.contains("parity"),
            "parity self-heal recorded, got {:?}",
            rep.source
        );
        assert_eq!(controls[0].corruptions_armed(), 0);
        assert_eq!(controls[2].corruptions_armed(), 0);
        assert!(policy.verify_epoch(1).unwrap().is_clean());
    }

    #[test]
    fn damage_on_every_level_is_irreparable() {
        let (policy, controls) = build_injected(SPEC);
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        drain_all(&policy);
        // Pages 0 and 1 share a parity group (group size 4), so even the
        // parity level cannot self-heal a double loss; the replica level's
        // shared injection control rots both members alike.
        for control in &controls {
            control.corrupt_read_payload(1, 0, 0);
            control.corrupt_read_payload(1, 1, 0);
        }
        let err = policy.repair_epoch(1).unwrap_err();
        assert!(
            err.to_string().contains("no surviving source"),
            "unexpected error: {err}"
        );
        assert!(!policy.verify_epoch(1).unwrap().is_clean());
    }

    #[test]
    fn corrupt_stream_read_heals_the_level_in_place() {
        let (policy, controls) = build_injected(SPEC);
        write_epoch(&policy, 1, epoch_pages(1)).unwrap();
        drain_all(&policy);
        // Only the parity level is alive; its stream read trips over the
        // armed rot. The read path must repair the level in place (XOR
        // group) and then serve the bytes — not fail the restore.
        controls[0].kill();
        controls[1].kill();
        controls[2].corrupt_read_payload(1, 2, 0);
        let mut seen = Vec::new();
        policy
            .read_epoch(1, &mut |p, d| seen.push((p, d.to_vec())))
            .unwrap();
        assert_eq!(seen, epoch_pages(1));
        assert_eq!(
            controls[2].corruptions_armed(),
            0,
            "the read healed the rot instead of working around it"
        );
    }
}
