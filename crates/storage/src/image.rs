//! Incremental restore: materialise the memory image of a checkpoint from a
//! chain of incremental epochs.
//!
//! Incremental checkpointing (§2) stores only the pages that changed since
//! the previous checkpoint, so the state at checkpoint `n` is the
//! *latest-wins* union of epochs `1..=n`. [`CheckpointImage::load`] performs
//! that reconstruction; pages never written by the application are absent
//! and implicitly zero (protected regions are zero-filled at allocation).
//!
//! When the chain has been compacted, the replay starts at the newest
//! **full** segment at or below the target instead of epoch 0 — restore
//! cost is then bounded by the compaction policy, not by the age of the
//! job. Epochs below the compaction horizon are gone; asking for them
//! fails cleanly rather than returning a partial image.

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use crate::backend::{EpochKind, StorageBackend};
use crate::cache::PageCache;
use crate::locator::PageLocator;

/// A reconstructed page image at some checkpoint. Payloads are
/// reference-counted so an image loaded through the shared [`PageCache`]
/// aliases the cached bytes instead of copying them.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    pages: BTreeMap<u64, Arc<[u8]>>,
    checkpoint: u64,
}

impl CheckpointImage {
    /// Reconstruct the image as of checkpoint `up_to` (inclusive). Fails if
    /// `up_to` was never committed (or was compacted away).
    pub fn load<B: StorageBackend + ?Sized>(backend: &B, up_to: u64) -> io::Result<Self> {
        let chain: Vec<_> = backend
            .chain()?
            .into_iter()
            .filter(|c| c.epoch <= up_to)
            .collect();
        if chain.last().map(|c| c.epoch) != Some(up_to) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("checkpoint {up_to} was never committed (or was compacted away)"),
            ));
        }
        // Replay from the newest full segment: everything before it is
        // already folded in (and may no longer exist on storage).
        let start = chain
            .iter()
            .rposition(|c| c.kind == EpochKind::Full)
            .unwrap_or(0);
        let mut pages: BTreeMap<u64, Arc<[u8]>> = BTreeMap::new();
        for c in &chain[start..] {
            backend.read_epoch(c.epoch, &mut |p, d| {
                // Later epochs overwrite earlier versions (epochs ascend).
                pages.insert(p, Arc::from(d));
            })?;
        }
        Ok(Self {
            pages,
            checkpoint: up_to,
        })
    }

    /// Like [`CheckpointImage::load`], but resolve every page through the
    /// shared [`PageCache`] under the same `(checkpoint, page)` keys the
    /// lazy restore path uses — eager and lazy restores (and repeated eager
    /// restores in a storm) of one checkpoint then dedupe their disk reads:
    /// each page is read from `backend` once per storm, every other reader
    /// aliases the cached payload.
    ///
    /// Latest-wins resolution goes through a [`PageLocator`] (manifest
    /// metadata only), so on a warm cache this touches no payload I/O at
    /// all. With `cache == None` this is exactly [`CheckpointImage::load`].
    pub fn load_cached(
        backend: &dyn StorageBackend,
        up_to: u64,
        cache: Option<&PageCache>,
    ) -> io::Result<Self> {
        let Some(cache) = cache else {
            return Self::load(backend, up_to);
        };
        let locator = PageLocator::build(backend, up_to)?;
        let mut pages: BTreeMap<u64, Arc<[u8]>> = BTreeMap::new();
        for &page in locator.pages_newest_first() {
            let epoch = locator
                .epoch_of(page)
                .expect("locator lists only resolved pages");
            let data = cache
                .get_or_load(up_to, page, || backend.read_page_at(epoch, page))?
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("page {page} vanished from epoch {epoch}"),
                    )
                })?;
            pages.insert(page, data);
        }
        Ok(Self {
            pages,
            checkpoint: up_to,
        })
    }

    /// [`CheckpointImage::load_cached`] for the most recent committed
    /// checkpoint, or `None` on a fresh backend.
    pub fn load_latest_cached(
        backend: &dyn StorageBackend,
        cache: Option<&PageCache>,
    ) -> io::Result<Option<Self>> {
        match backend.epochs()?.last() {
            Some(&last) => Ok(Some(Self::load_cached(backend, last, cache)?)),
            None => Ok(None),
        }
    }

    /// Reconstruct the image at the most recent committed checkpoint, or
    /// `None` if no checkpoint exists.
    pub fn load_latest<B: StorageBackend + ?Sized>(backend: &B) -> io::Result<Option<Self>> {
        match backend.epochs()?.last() {
            Some(&last) => Ok(Some(Self::load(backend, last)?)),
            None => Ok(None),
        }
    }

    /// The checkpoint this image corresponds to.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// Bytes of a page, if it was ever checkpointed.
    pub fn page(&self, id: u64) -> Option<&[u8]> {
        self.pages.get(&id).map(|d| &d[..])
    }

    /// Number of distinct pages in the image.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no page was ever checkpointed.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterate `(page id, bytes)` in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(&p, d)| (p, &d[..]))
    }

    /// Apply every page into a caller-provided sink (e.g. copy back into
    /// re-allocated protected regions).
    pub fn apply(&self, mut sink: impl FnMut(u64, &[u8])) {
        for (&p, d) in &self.pages {
            sink(p, &d[..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::memory::MemoryBackend;

    #[test]
    fn latest_wins_across_epochs() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1]), (1, vec![1]), (2, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
        write_epoch(&b, 3, vec![(2, vec![3]), (3, vec![3])]).unwrap();

        let at2 = CheckpointImage::load(&b, 2).unwrap();
        assert_eq!(at2.page(0), Some(&[1u8][..]));
        assert_eq!(at2.page(1), Some(&[2u8][..]), "epoch 2 wins");
        assert_eq!(at2.page(2), Some(&[1u8][..]), "epoch 3 not included");
        assert_eq!(at2.page(3), None);

        let at3 = CheckpointImage::load(&b, 3).unwrap();
        assert_eq!(at3.page(2), Some(&[3u8][..]));
        assert_eq!(at3.page(3), Some(&[3u8][..]));
        assert_eq!(at3.len(), 4);
    }

    #[test]
    fn load_latest_and_missing() {
        let b = MemoryBackend::new();
        assert!(CheckpointImage::load_latest(&b).unwrap().is_none());
        assert!(CheckpointImage::load(&b, 1).is_err());
        write_epoch(&b, 1, vec![(5, vec![9])]).unwrap();
        let img = CheckpointImage::load_latest(&b).unwrap().unwrap();
        assert_eq!(img.checkpoint(), 1);
        assert_eq!(img.page(5), Some(&[9u8][..]));
        assert!(!img.is_empty());
    }

    #[test]
    fn load_replays_only_from_the_newest_full_segment() {
        // A backend whose read_epoch panics for epochs below the fold: the
        // compacted prefix must never be touched by restore.
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1]), (1, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
        write_epoch(&b, 3, vec![(2, vec![3])]).unwrap();
        b.compact(2).unwrap();
        let img = CheckpointImage::load(&b, 3).unwrap();
        assert_eq!(img.page(0), Some(&[1u8][..]));
        assert_eq!(img.page(1), Some(&[2u8][..]));
        assert_eq!(img.page(2), Some(&[3u8][..]));
        // Below the compaction horizon: clean failure, not silent garbage.
        let err = CheckpointImage::load(&b, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn load_cached_matches_load_and_dedupes_reads() {
        use crate::cache::PageCache;
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1; 8]), (1, vec![1; 8])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2; 8]), (3, vec![2; 8])]).unwrap();
        let cache = PageCache::new(1 << 20);
        let eager = CheckpointImage::load(&b, 2).unwrap();
        let cached = CheckpointImage::load_cached(&b, 2, Some(&cache)).unwrap();
        assert_eq!(eager, cached, "cache routing must not change the image");
        let after_first = cache.stats();
        assert_eq!(after_first.misses, 3, "one backend read per image page");
        // A second load (an eager restore storm, or a lazy restore of the
        // same checkpoint) is served from the cache entirely.
        let again = CheckpointImage::load_cached(&b, 2, Some(&cache)).unwrap();
        assert_eq!(again, eager);
        let after_second = cache.stats();
        assert_eq!(after_second.misses, after_first.misses, "no new reads");
        assert_eq!(after_second.hits, after_first.hits + 3);
        // `None` falls back to the uncached path.
        let latest = CheckpointImage::load_latest_cached(&b, None)
            .unwrap()
            .unwrap();
        assert_eq!(latest, eager);
    }

    #[test]
    fn apply_visits_in_page_order() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(9, vec![9]), (1, vec![1]), (5, vec![5])]).unwrap();
        let img = CheckpointImage::load(&b, 1).unwrap();
        let mut order = Vec::new();
        img.apply(|p, _| order.push(p));
        assert_eq!(order, vec![1, 5, 9]);
        assert_eq!(img.iter().count(), 3);
    }
}
