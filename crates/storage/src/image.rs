//! Incremental restore: materialise the memory image of a checkpoint from a
//! chain of incremental epochs.
//!
//! Incremental checkpointing (§2) stores only the pages that changed since
//! the previous checkpoint, so the state at checkpoint `n` is the
//! *latest-wins* union of epochs `1..=n`. [`CheckpointImage::load`] performs
//! that reconstruction; pages never written by the application are absent
//! and implicitly zero (protected regions are zero-filled at allocation).
//!
//! When the chain has been compacted, the replay starts at the newest
//! **full** segment at or below the target instead of epoch 0 — restore
//! cost is then bounded by the compaction policy, not by the age of the
//! job. Epochs below the compaction horizon are gone; asking for them
//! fails cleanly rather than returning a partial image.

use std::collections::BTreeMap;
use std::io;

use crate::backend::{EpochKind, StorageBackend};

/// A reconstructed page image at some checkpoint.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    pages: BTreeMap<u64, Vec<u8>>,
    checkpoint: u64,
}

impl CheckpointImage {
    /// Reconstruct the image as of checkpoint `up_to` (inclusive). Fails if
    /// `up_to` was never committed (or was compacted away).
    pub fn load<B: StorageBackend + ?Sized>(backend: &B, up_to: u64) -> io::Result<Self> {
        let chain: Vec<_> = backend
            .chain()?
            .into_iter()
            .filter(|c| c.epoch <= up_to)
            .collect();
        if chain.last().map(|c| c.epoch) != Some(up_to) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("checkpoint {up_to} was never committed (or was compacted away)"),
            ));
        }
        // Replay from the newest full segment: everything before it is
        // already folded in (and may no longer exist on storage).
        let start = chain
            .iter()
            .rposition(|c| c.kind == EpochKind::Full)
            .unwrap_or(0);
        let mut pages: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for c in &chain[start..] {
            backend.read_epoch(c.epoch, &mut |p, d| {
                // Later epochs overwrite earlier versions (epochs ascend).
                pages.insert(p, d.to_vec());
            })?;
        }
        Ok(Self {
            pages,
            checkpoint: up_to,
        })
    }

    /// Reconstruct the image at the most recent committed checkpoint, or
    /// `None` if no checkpoint exists.
    pub fn load_latest<B: StorageBackend + ?Sized>(backend: &B) -> io::Result<Option<Self>> {
        match backend.epochs()?.last() {
            Some(&last) => Ok(Some(Self::load(backend, last)?)),
            None => Ok(None),
        }
    }

    /// The checkpoint this image corresponds to.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// Bytes of a page, if it was ever checkpointed.
    pub fn page(&self, id: u64) -> Option<&[u8]> {
        self.pages.get(&id).map(Vec::as_slice)
    }

    /// Number of distinct pages in the image.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no page was ever checkpointed.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterate `(page id, bytes)` in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.pages.iter().map(|(&p, d)| (p, d.as_slice()))
    }

    /// Apply every page into a caller-provided sink (e.g. copy back into
    /// re-allocated protected regions).
    pub fn apply(&self, mut sink: impl FnMut(u64, &[u8])) {
        for (&p, d) in &self.pages {
            sink(p, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::memory::MemoryBackend;

    #[test]
    fn latest_wins_across_epochs() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1]), (1, vec![1]), (2, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
        write_epoch(&b, 3, vec![(2, vec![3]), (3, vec![3])]).unwrap();

        let at2 = CheckpointImage::load(&b, 2).unwrap();
        assert_eq!(at2.page(0), Some(&[1u8][..]));
        assert_eq!(at2.page(1), Some(&[2u8][..]), "epoch 2 wins");
        assert_eq!(at2.page(2), Some(&[1u8][..]), "epoch 3 not included");
        assert_eq!(at2.page(3), None);

        let at3 = CheckpointImage::load(&b, 3).unwrap();
        assert_eq!(at3.page(2), Some(&[3u8][..]));
        assert_eq!(at3.page(3), Some(&[3u8][..]));
        assert_eq!(at3.len(), 4);
    }

    #[test]
    fn load_latest_and_missing() {
        let b = MemoryBackend::new();
        assert!(CheckpointImage::load_latest(&b).unwrap().is_none());
        assert!(CheckpointImage::load(&b, 1).is_err());
        write_epoch(&b, 1, vec![(5, vec![9])]).unwrap();
        let img = CheckpointImage::load_latest(&b).unwrap().unwrap();
        assert_eq!(img.checkpoint(), 1);
        assert_eq!(img.page(5), Some(&[9u8][..]));
        assert!(!img.is_empty());
    }

    #[test]
    fn load_replays_only_from_the_newest_full_segment() {
        // A backend whose read_epoch panics for epochs below the fold: the
        // compacted prefix must never be touched by restore.
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1]), (1, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
        write_epoch(&b, 3, vec![(2, vec![3])]).unwrap();
        b.compact(2).unwrap();
        let img = CheckpointImage::load(&b, 3).unwrap();
        assert_eq!(img.page(0), Some(&[1u8][..]));
        assert_eq!(img.page(1), Some(&[2u8][..]));
        assert_eq!(img.page(2), Some(&[3u8][..]));
        // Below the compaction horizon: clean failure, not silent garbage.
        let err = CheckpointImage::load(&b, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn apply_visits_in_page_order() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(9, vec![9]), (1, vec![1]), (5, vec![5])]).unwrap();
        let img = CheckpointImage::load(&b, 1).unwrap();
        let mut order = Vec::new();
        img.apply(|p, _| order.push(p));
        assert_eq!(order, vec![1, 5, 9]);
        assert_eq!(img.iter().count(), 3);
    }
}
