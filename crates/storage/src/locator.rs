//! Page-to-epoch resolution for demand-paged restore.
//!
//! Eager restore materialises the whole chain into memory before the
//! application runs ([`crate::image::CheckpointImage`]). The lazy path
//! instead builds a [`PageLocator`]: a map from page id to the *newest*
//! chain epoch holding that page, computed from per-epoch page-id listings
//! ([`crate::StorageBackend::epoch_page_ids`]) without touching a single
//! payload byte. Page contents are then fetched one record at a time with
//! [`crate::StorageBackend::read_page_at`], on demand or ahead of demand by
//! the prefetcher.
//!
//! The chain-walk rules mirror `CheckpointImage::load` exactly — same
//! full-segment cut-off, same latest-wins resolution — so a lazy restore
//! that faults in every page is byte-identical to an eager one.

use std::collections::HashMap;
use std::io;

use crate::backend::{EpochKind, StorageBackend};

/// Index resolving `page id → newest epoch holding it` for one checkpoint
/// of a backend's chain, built without materialising any payload.
#[derive(Debug)]
pub struct PageLocator {
    /// The checkpoint this locator resolves.
    checkpoint: u64,
    /// Latest-wins resolution: the newest chain epoch recording each page.
    map: HashMap<u64, u64>,
    /// Pages in discovery order: newest epoch first, record (arrival) order
    /// within an epoch. This doubles as the prefetch order — recent epochs
    /// hold the hottest pages, and within an epoch the record order is the
    /// first-write order the scheduler already optimised.
    order: Vec<u64>,
}

impl PageLocator {
    /// Build the locator for checkpoint `up_to`. Fails with `NotFound` when
    /// `up_to` is not a live chain epoch (same contract as
    /// `CheckpointImage::load`).
    pub fn build(backend: &dyn StorageBackend, up_to: u64) -> io::Result<Self> {
        let chain: Vec<_> = backend
            .chain()?
            .into_iter()
            .filter(|c| c.epoch <= up_to)
            .collect();
        if chain.last().map(|c| c.epoch) != Some(up_to) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("checkpoint {up_to} is not a live epoch"),
            ));
        }
        // Restore starts at the newest full segment at or below the target;
        // everything before it is superseded.
        let start = chain
            .iter()
            .rposition(|c| c.kind == EpochKind::Full)
            .unwrap_or(0);
        let mut map = HashMap::new();
        let mut order = Vec::new();
        // Walk newest-first: the first sighting of a page is its newest
        // version, so one pass resolves latest-wins without any payload I/O.
        for entry in chain[start..].iter().rev() {
            for page in backend.epoch_page_ids(entry.epoch)? {
                if let std::collections::hash_map::Entry::Vacant(e) = map.entry(page) {
                    e.insert(entry.epoch);
                    order.push(page);
                }
            }
        }
        Ok(Self {
            checkpoint: up_to,
            map,
            order,
        })
    }

    /// The checkpoint this locator resolves.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// The newest chain epoch holding `page`, or `None` when the checkpoint
    /// recorded no version of it (restore fills such pages with zeros).
    pub fn epoch_of(&self, page: u64) -> Option<u64> {
        self.map.get(&page).copied()
    }

    /// Every resolved page, in discovery order (newest epoch first, record
    /// order within an epoch) — the prefetcher's fill order.
    pub fn pages_newest_first(&self) -> &[u64] {
        &self.order
    }

    /// Number of distinct pages the checkpoint holds.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the checkpoint holds no pages at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::image::CheckpointImage;
    use crate::memory::MemoryBackend;

    #[test]
    fn resolves_latest_wins_across_deltas() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1]), (1, vec![1]), (2, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(1, vec![2])]).unwrap();
        write_epoch(&b, 3, vec![(2, vec![3]), (4, vec![3])]).unwrap();
        let loc = PageLocator::build(&b, 3).unwrap();
        assert_eq!(loc.checkpoint(), 3);
        assert_eq!(loc.epoch_of(0), Some(1));
        assert_eq!(loc.epoch_of(1), Some(2));
        assert_eq!(loc.epoch_of(2), Some(3));
        assert_eq!(loc.epoch_of(4), Some(3));
        assert_eq!(loc.epoch_of(9), None);
        assert_eq!(loc.len(), 4);
        // Newest epoch's pages lead the prefetch order.
        assert_eq!(loc.pages_newest_first(), &[2, 4, 1, 0]);
    }

    #[test]
    fn respects_target_epoch_cutoff() {
        let b = MemoryBackend::new();
        write_epoch(&b, 1, vec![(0, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(0, vec![2])]).unwrap();
        let loc = PageLocator::build(&b, 1).unwrap();
        assert_eq!(loc.epoch_of(0), Some(1), "newer epochs are ignored");
        assert!(PageLocator::build(&b, 7).is_err(), "not a live epoch");
    }

    #[test]
    fn agrees_with_eager_image_under_compaction() {
        let b = MemoryBackend::new();
        for e in 1..=6u64 {
            write_epoch(&b, e, vec![(e % 3, vec![e as u8]), (10 + e, vec![e as u8])]).unwrap();
        }
        b.compact(4).unwrap();
        let image = CheckpointImage::load(&b, 6).unwrap();
        let loc = PageLocator::build(&b, 6).unwrap();
        assert_eq!(loc.len(), image.len());
        for (page, data) in image.iter() {
            let epoch = loc.epoch_of(page).expect("locator resolves every page");
            let via_locator = b.read_page_at(epoch, page).unwrap().unwrap();
            assert_eq!(via_locator, data, "page {page} differs");
        }
    }
}
