//! Failure-injecting wrapper: drives the committer's and restore's error
//! paths in tests (storage *will* fail in production — the whole point of
//! checkpointing is surviving faults, so the library itself must handle its
//! own substrate failing).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{EpochWriter, StorageBackend};
use crate::scrub::{RecordMeta, RepairReport, VerifyReport};

/// Operations a [`FailureControl`] can arm a *transient* burst against:
/// the next `n` calls fail with an `Interrupted`-kind error (the
/// [`Transient`](crate::errors::FaultClass::Transient) class), after which
/// the op heals itself — the EINTR-shaped hiccup the retry layer exists
/// for, as opposed to the permanent flags which stay armed until
/// [`FailureControl::heal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `begin_epoch` (the session never opens).
    BeginEpoch,
    /// `EpochWriter::finish` (the commit barrier).
    Finish,
    /// `put_blob`.
    PutBlob,
    /// `remove_epoch` / `remove_epochs`.
    RemoveEpoch,
    /// `drain_one` (the maintenance drain path).
    DrainOne,
    /// `install_compacted` (the compaction commit point).
    InstallCompacted,
    /// The payload read entry points (`read_epoch`, `epoch_page_ids`,
    /// `read_page_at`).
    Read,
}

impl FaultOp {
    const COUNT: usize = 7;

    fn idx(self) -> usize {
        self as usize
    }
}

/// Shared knob controlling when the wrapped backend starts failing. The
/// counters are atomics: failure budgets stay exact when multiple committer
/// streams write concurrently.
///
/// Beyond the original page-write budget and `finish` switch, every other
/// mutating entry point can be failed individually — epoch opens, blob
/// writes, and the whole chain API (`remove_epoch`, `drain_one`,
/// `install_compacted`), so manifest-append paths and the maintenance
/// worker are testable under fault too.
#[derive(Debug, Clone, Default)]
pub struct FailureControl {
    /// Records remaining before page writes start failing (`u64::MAX` =
    /// never).
    writes_until_failure: Arc<AtomicU64>,
    /// When set, `finish` fails.
    fail_finish: Arc<AtomicU64>,
    /// When set, `begin_epoch` fails (the session never opens).
    fail_begin_epoch: Arc<AtomicU64>,
    /// When set, `put_blob` fails.
    fail_put_blob: Arc<AtomicU64>,
    /// When set, `remove_epoch` fails (tier eviction / group abort path).
    fail_remove_epoch: Arc<AtomicU64>,
    /// When set, `drain_one` fails (maintenance drain path).
    fail_drain_one: Arc<AtomicU64>,
    /// When set, `install_compacted` fails (the compaction commit point).
    fail_install_compacted: Arc<AtomicU64>,
    /// When set, every read entry point fails (`get_blob`, `epochs`,
    /// `high_water`, `read_epoch`, `epoch_page_ids`, `read_page_at`,
    /// `chain`, `list_blobs`) — the degraded-read half of losing a device.
    fail_reads: Arc<AtomicU64>,
    /// When set, *everything* fails — the whole store is gone. This is the
    /// policy layer's whole-level fault: one shared control wrapped around
    /// each store of a resilience level kills the level in a single switch,
    /// and liveness probes (`epochs()`) observe the loss immediately.
    killed: Arc<AtomicU64>,
    /// Per-[`FaultOp`] transient budgets: each entry counts failures still
    /// owed; ops decrement on the way through and fail `Interrupted` while
    /// non-zero (self-healing bursts).
    transient: Arc<[AtomicU64; FaultOp::COUNT]>,
    /// Armed at-rest corruption: `(epoch, page, byte)` triples whose reads
    /// fail `InvalidData` until the epoch is rewritten.
    corrupt: Arc<Mutex<Vec<(u64, u64, u64)>>>,
}

impl FailureControl {
    /// A control that never fails until configured.
    pub fn new() -> Self {
        Self {
            writes_until_failure: Arc::new(AtomicU64::new(u64::MAX)),
            ..Self::default()
        }
    }

    /// Let `n` more page records succeed, then fail every subsequent write.
    pub fn fail_writes_after(&self, n: u64) {
        self.writes_until_failure.store(n, Ordering::SeqCst);
    }

    /// Stop injecting failures of every kind (including a [`kill`]).
    ///
    /// [`kill`]: FailureControl::kill
    pub fn heal(&self) {
        self.writes_until_failure.store(u64::MAX, Ordering::SeqCst);
        for flag in [
            &self.fail_finish,
            &self.fail_begin_epoch,
            &self.fail_put_blob,
            &self.fail_remove_epoch,
            &self.fail_drain_one,
            &self.fail_install_compacted,
            &self.fail_reads,
            &self.killed,
        ] {
            flag.store(0, Ordering::SeqCst);
        }
        for budget in self.transient.iter() {
            budget.store(0, Ordering::SeqCst);
        }
        // Armed corruption survives a heal on purpose: recovering the
        // transport cannot un-flip stored bytes. Only a rewrite (the
        // repair path) clears it.
    }

    /// Arm a transient burst: the next `n` calls of `op` fail with an
    /// `Interrupted`-kind error (classified
    /// [`Transient`](crate::errors::FaultClass::Transient)), after which
    /// the op succeeds again without any `heal` — a fault that fixes
    /// itself, which is exactly what the retry layer must absorb.
    pub fn fail_next_n(&self, op: FaultOp, n: u64) {
        self.transient[op.idx()].store(n, Ordering::SeqCst);
    }

    /// Transient failures still owed for `op` (0 = the burst is spent).
    pub fn transient_remaining(&self, op: FaultOp) -> u64 {
        self.transient[op.idx()].load(Ordering::SeqCst)
    }

    /// Arm at-rest corruption: every read touching `page` of `epoch`
    /// fails `InvalidData` — as if stored byte `byte` had rotted below
    /// the CRC — until the epoch is rewritten through the repair path
    /// ([`StorageBackend::rewrite_epoch`]). [`heal`](FailureControl::heal)
    /// deliberately does *not* clear this: corruption is data damage, not
    /// transport unavailability.
    pub fn corrupt_read_payload(&self, epoch: u64, page: u64, byte: u64) {
        self.corrupt.lock().push((epoch, page, byte));
    }

    /// Number of corruption entries still armed (test observability).
    pub fn corruptions_armed(&self) -> usize {
        self.corrupt.lock().len()
    }

    /// Consume one transient token for `op`, failing if one was armed.
    fn take_transient(&self, op: FaultOp) -> io::Result<()> {
        let budget = &self.transient[op.idx()];
        let mut cur = budget.load(Ordering::SeqCst);
        while cur > 0 {
            match budget.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Err(crate::errors::transient("injected transient fault")),
                Err(actual) => cur = actual,
            }
        }
        Ok(())
    }

    /// The armed corruption hit for `(epoch, page)`, if any.
    fn corrupt_hit(&self, epoch: u64, page: u64) -> Option<u64> {
        self.corrupt
            .lock()
            .iter()
            .find(|(e, p, _)| *e == epoch && *p == page)
            .map(|(_, _, byte)| *byte)
    }

    /// The first armed corruption for `epoch`, if any.
    fn first_corrupt(&self, epoch: u64) -> Option<(u64, u64)> {
        self.corrupt
            .lock()
            .iter()
            .find(|(e, _, _)| *e == epoch)
            .map(|(_, page, byte)| (*page, *byte))
    }

    /// All pages armed corrupt for `epoch`.
    fn corrupt_pages_for(&self, epoch: u64) -> Vec<u64> {
        self.corrupt
            .lock()
            .iter()
            .filter(|(e, _, _)| *e == epoch)
            .map(|(_, p, _)| *p)
            .collect()
    }

    /// A rewrite replaced the epoch's stored bytes: the armed rot is gone.
    fn clear_corruption(&self, epoch: u64) {
        self.corrupt.lock().retain(|(e, _, _)| *e != epoch);
    }

    /// Fail every operation — reads, writes, the whole chain API — as if
    /// the device vanished. [`heal`](FailureControl::heal) brings it back
    /// (the data was never touched: a kill is unavailability, not loss).
    pub fn kill(&self) {
        self.killed.store(1, Ordering::SeqCst);
    }

    /// Whether [`kill`](FailureControl::kill) is currently in effect.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst) != 0
    }

    /// Make every read entry point fail while writes still land (a device
    /// that lost its read path, or a fabric partition on the restore side).
    pub fn fail_reads(&self, yes: bool) {
        self.fail_reads.store(yes as u64, Ordering::SeqCst);
    }

    /// Make `finish` fail.
    pub fn fail_finish(&self, yes: bool) {
        self.fail_finish.store(yes as u64, Ordering::SeqCst);
    }

    /// Make `begin_epoch` fail.
    pub fn fail_begin_epoch(&self, yes: bool) {
        self.fail_begin_epoch.store(yes as u64, Ordering::SeqCst);
    }

    /// Make `put_blob` fail.
    pub fn fail_put_blob(&self, yes: bool) {
        self.fail_put_blob.store(yes as u64, Ordering::SeqCst);
    }

    /// Make `remove_epoch` fail.
    pub fn fail_remove_epoch(&self, yes: bool) {
        self.fail_remove_epoch.store(yes as u64, Ordering::SeqCst);
    }

    /// Make `drain_one` fail.
    pub fn fail_drain_one(&self, yes: bool) {
        self.fail_drain_one.store(yes as u64, Ordering::SeqCst);
    }

    /// Make `install_compacted` fail.
    pub fn fail_install_compacted(&self, yes: bool) {
        self.fail_install_compacted
            .store(yes as u64, Ordering::SeqCst);
    }

    /// Gate a mutating entry point: fails when its individual flag is armed
    /// or the whole store is killed.
    fn gate(&self, flag: &AtomicU64) -> io::Result<()> {
        if self.killed.load(Ordering::SeqCst) != 0 || flag.load(Ordering::SeqCst) != 0 {
            return Err(injected());
        }
        Ok(())
    }

    /// Gate a read entry point: fails under `fail_reads` or a kill.
    fn read_gate(&self) -> io::Result<()> {
        if self.killed.load(Ordering::SeqCst) != 0 || self.fail_reads.load(Ordering::SeqCst) != 0 {
            return Err(injected());
        }
        Ok(())
    }

    fn take_write_token(&self) -> bool {
        if self.killed.load(Ordering::SeqCst) != 0 {
            return false;
        }
        let mut cur = self.writes_until_failure.load(Ordering::SeqCst);
        loop {
            if cur == u64::MAX {
                return true; // unlimited
            }
            if cur == 0 {
                return false;
            }
            match self.writes_until_failure.compare_exchange(
                cur,
                cur - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Backend wrapper that fails on command.
#[derive(Debug)]
pub struct FailingBackend<B> {
    inner: B,
    control: FailureControl,
}

impl<B: StorageBackend> FailingBackend<B> {
    /// Wrap `inner`; keep the returned control to trigger failures.
    pub fn new(inner: B) -> (Self, FailureControl) {
        let control = FailureControl::new();
        (Self::with_control(inner, control.clone()), control)
    }

    /// Wrap `inner` under an existing (possibly shared) control: the policy
    /// layer wraps every store of one resilience level with one control, so
    /// a single [`FailureControl::kill`] takes the whole level down — below
    /// the level's protection wrapper, where even direct parity-recovery
    /// reads cannot sidestep the fault.
    pub fn with_control(inner: B, control: FailureControl) -> Self {
        Self { inner, control }
    }
}

fn injected() -> io::Error {
    io::Error::other("injected storage failure")
}

fn corrupt_injected(epoch: u64, page: u64, byte: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("injected corrupt payload for page {page} in epoch {epoch} (stored byte {byte})"),
    )
}

/// Open-epoch session that consumes one failure token per record.
struct FailingEpochWriter {
    inner: Box<dyn EpochWriter>,
    control: FailureControl,
}

impl EpochWriter for FailingEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        // Consume tokens record by record: a budget of `n` lets exactly `n`
        // records through even when they arrive in one batch.
        let mut allowed = 0;
        for _ in batch {
            if !self.control.take_write_token() {
                break;
            }
            allowed += 1;
        }
        if allowed > 0 {
            self.inner.write_pages(&batch[..allowed])?;
        }
        if allowed < batch.len() {
            return Err(injected());
        }
        Ok(())
    }

    fn finish(&self) -> io::Result<()> {
        self.control.gate(&self.control.fail_finish)?;
        self.control.take_transient(FaultOp::Finish)?;
        self.inner.finish()
    }

    fn abort(&self) -> io::Result<()> {
        self.inner.abort()
    }
}

impl<B: StorageBackend> StorageBackend for FailingBackend<B> {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        self.control.gate(&self.control.fail_begin_epoch)?;
        self.control.take_transient(FaultOp::BeginEpoch)?;
        Ok(Box::new(FailingEpochWriter {
            inner: self.inner.begin_epoch(epoch)?,
            control: self.control.clone(),
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.control.gate(&self.control.fail_put_blob)?;
        self.control.take_transient(FaultOp::PutBlob)?;
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.control.read_gate()?;
        self.inner.get_blob(name)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.control.read_gate()?;
        self.inner.epochs()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.control.read_gate()?;
        self.control.take_transient(FaultOp::Read)?;
        // A stream cannot step over rot: the first armed page of the epoch
        // fails the whole read, exactly as a real CRC mismatch would.
        if let Some((page, byte)) = self.control.first_corrupt(epoch) {
            return Err(corrupt_injected(epoch, page, byte));
        }
        self.inner.read_epoch(epoch, visit)
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        // The frame walk survives payload rot (ids live in frames), so
        // armed corruption does not fire here — only gates and bursts.
        self.control.read_gate()?;
        self.control.take_transient(FaultOp::Read)?;
        self.inner.epoch_page_ids(epoch)
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        self.control.read_gate()?;
        self.control.take_transient(FaultOp::Read)?;
        if let Some(byte) = self.control.corrupt_hit(epoch, page) {
            return Err(corrupt_injected(epoch, page, byte));
        }
        self.inner.read_page_at(epoch, page)
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        // A kill takes the delete path down too (it is a mutation), but
        // there is no individual flag for it: retirement failures are
        // injected through `fail_remove_epoch` where they matter.
        if self.control.is_killed() {
            return Err(injected());
        }
        self.inner.delete_blob(name)
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        self.control.read_gate()?;
        self.inner.list_blobs()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_stored(&self) -> u64 {
        self.inner.bytes_stored()
    }

    fn chain(&self) -> io::Result<Vec<crate::backend::ChainEntry>> {
        self.control.read_gate()?;
        self.inner.chain()
    }

    fn supports_compaction(&self) -> bool {
        self.inner.supports_compaction()
    }

    // `compact` is deliberately NOT forwarded: the default trait merge runs
    // over this wrapper's (forwarded) `chain`/`read_epoch` and commits
    // through `install_compacted` below, so an armed
    // `fail_install_compacted` hits the compaction commit point exactly as
    // it would on the real backend.

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        self.control.gate(&self.control.fail_install_compacted)?;
        self.control.take_transient(FaultOp::InstallCompacted)?;
        self.inner.install_compacted(from, into, records)
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        self.control.gate(&self.control.fail_remove_epoch)?;
        self.control.take_transient(FaultOp::RemoveEpoch)?;
        self.inner.remove_epoch(epoch)
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        self.control.gate(&self.control.fail_remove_epoch)?;
        self.control.take_transient(FaultOp::RemoveEpoch)?;
        self.inner.remove_epochs(epochs)
    }

    fn io_stats(&self) -> crate::io::IoStats {
        self.inner.io_stats()
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        self.control.gate(&self.control.fail_drain_one)?;
        self.control.take_transient(FaultOp::DrainOne)?;
        self.inner.drain_one()
    }

    fn drain_backlog(&self) -> usize {
        self.inner.drain_backlog()
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        self.control.read_gate()?;
        self.inner.high_water()
    }

    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        self.control.read_gate()?;
        let mut report = self.inner.verify_epoch(epoch)?;
        // Armed rot is real damage as far as readers are concerned — the
        // scrub surface must report it even though the inner store's bytes
        // are fine.
        for page in self.control.corrupt_pages_for(epoch) {
            report.note_corrupt(page);
            report.records = report.records.saturating_sub(1);
        }
        Ok(report)
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        // The rewrite shares `install_compacted`'s injection point: both
        // are the atomic install path.
        self.control.gate(&self.control.fail_install_compacted)?;
        self.inner.rewrite_epoch(epoch, records)?;
        // The stored bytes were replaced wholesale: the armed rot is gone.
        self.control.clear_corruption(epoch);
        Ok(())
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        if self.control.is_killed() {
            return Err(injected());
        }
        self.inner.repair_epoch(epoch)
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        self.control.read_gate()?;
        self.inner.record_meta(epoch, page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;

    #[test]
    fn fails_after_budget_then_heals() {
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        let w = b.begin_epoch(1).unwrap();
        ctl.fail_writes_after(2);
        w.write_pages(&[(0, &[0])]).unwrap();
        w.write_pages(&[(1, &[1])]).unwrap();
        assert!(w.write_pages(&[(2, &[2])]).is_err());
        assert!(w.write_pages(&[(3, &[3])]).is_err(), "stays failed");
        ctl.heal();
        w.write_pages(&[(4, &[4])]).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn budget_applies_within_one_batch() {
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        let w = b.begin_epoch(1).unwrap();
        ctl.fail_writes_after(2);
        let err = w
            .write_pages(&[(0, &[0]), (1, &[1]), (2, &[2])])
            .unwrap_err();
        assert!(err.to_string().contains("injected"));
        ctl.heal();
        w.finish().unwrap();
        // Exactly the two budgeted records made it through.
        let mut pages = Vec::new();
        b.read_epoch(1, &mut |p, _| pages.push(p)).unwrap();
        assert_eq!(pages, vec![0, 1]);
    }

    #[test]
    fn begin_epoch_and_blob_injection() {
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        ctl.fail_begin_epoch(true);
        assert!(b.begin_epoch(1).is_err());
        ctl.fail_put_blob(true);
        assert!(b.put_blob("layout", b"x").is_err());
        ctl.heal();
        b.begin_epoch(1).unwrap().finish().unwrap();
        b.put_blob("layout", b"x").unwrap();
        assert_eq!(b.get_blob("layout").unwrap().unwrap(), b"x");
    }

    #[test]
    fn chain_api_injection() {
        use crate::backend::write_epoch;
        use crate::tiered::TieredBackend;
        let tier = TieredBackend::new(
            Box::new(MemoryBackend::new()),
            Box::new(MemoryBackend::new()),
            0,
        )
        .unwrap();
        let (b, ctl) = FailingBackend::new(tier);
        write_epoch(&b, 1, vec![(0, vec![1])]).unwrap();
        write_epoch(&b, 2, vec![(0, vec![2])]).unwrap();

        ctl.fail_drain_one(true);
        assert!(b.drain_one().is_err());
        ctl.fail_remove_epoch(true);
        assert!(b.remove_epoch(1).is_err());
        ctl.fail_install_compacted(true);
        assert!(b.compact(2).is_err(), "compaction commit point injected");
        // Nothing was lost: both epochs still restore after healing.
        ctl.heal();
        assert_eq!(b.epochs().unwrap(), vec![1, 2]);
        assert_eq!(b.drain_one().unwrap(), Some(1));
        b.compact(2).unwrap();
        assert_eq!(b.epochs().unwrap(), vec![2]);
        assert_eq!(b.high_water().unwrap(), Some(2));
    }

    #[test]
    fn read_injection_hits_every_read_entry_point() {
        use crate::backend::write_epoch;
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        write_epoch(&b, 1, vec![(0, vec![7])]).unwrap();
        b.put_blob("meta", b"m").unwrap();
        ctl.fail_reads(true);
        assert!(b.get_blob("meta").is_err());
        assert!(b.epochs().is_err());
        assert!(b.high_water().is_err());
        assert!(b.read_epoch(1, &mut |_, _| {}).is_err());
        assert!(b.epoch_page_ids(1).is_err());
        assert!(b.read_page_at(1, 0).is_err());
        assert!(b.chain().is_err());
        assert!(b.list_blobs().is_err());
        // Writes still land: the store lost its read path, not its media.
        write_epoch(&b, 2, vec![(1, vec![8])]).unwrap();
        ctl.heal();
        assert_eq!(b.epochs().unwrap(), vec![1, 2]);
    }

    #[test]
    fn kill_takes_everything_down_and_heal_restores_the_data() {
        use crate::backend::write_epoch;
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        write_epoch(&b, 1, vec![(0, vec![3])]).unwrap();
        ctl.kill();
        assert!(ctl.is_killed());
        assert!(b.begin_epoch(2).is_err());
        assert!(b.epochs().is_err(), "liveness probe observes the kill");
        assert!(b.put_blob("x", b"y").is_err());
        assert!(b.read_page_at(1, 0).is_err());
        assert!(b.remove_epoch(1).is_err());
        assert!(b.drain_one().is_err());
        assert!(b.delete_blob("x").is_err());
        // An open writer dies with the store too.
        ctl.heal();
        let w = b.begin_epoch(2).unwrap();
        w.write_pages(&[(1, &[4])]).unwrap();
        ctl.kill();
        assert!(w.write_pages(&[(2, &[5])]).is_err());
        assert!(w.finish().is_err());
        ctl.heal();
        // A kill is unavailability, not loss.
        assert_eq!(b.epochs().unwrap(), vec![1]);
        assert_eq!(b.read_page_at(1, 0).unwrap().unwrap(), vec![3]);
    }

    #[test]
    fn shared_control_kills_every_wrapped_store_at_once() {
        let ctl = FailureControl::new();
        let a = FailingBackend::with_control(MemoryBackend::new(), ctl.clone());
        let b = FailingBackend::with_control(MemoryBackend::new(), ctl.clone());
        ctl.kill();
        assert!(a.epochs().is_err());
        assert!(b.epochs().is_err());
        ctl.heal();
        assert!(a.epochs().unwrap().is_empty());
        assert!(b.epochs().unwrap().is_empty());
    }

    #[test]
    fn transient_bursts_self_heal_without_a_heal_call() {
        use crate::backend::write_epoch;
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        write_epoch(&b, 1, vec![(0, vec![1])]).unwrap();
        ctl.fail_next_n(FaultOp::Read, 2);
        for _ in 0..2 {
            assert_eq!(
                b.read_page_at(1, 0).unwrap_err().kind(),
                io::ErrorKind::Interrupted,
                "transient class, not permanent"
            );
        }
        assert_eq!(b.read_page_at(1, 0).unwrap().unwrap(), vec![1]);
        assert_eq!(ctl.transient_remaining(FaultOp::Read), 0);
        ctl.fail_next_n(FaultOp::DrainOne, 1);
        assert!(b.drain_one().is_err());
        assert_eq!(b.drain_one().unwrap(), None, "burst spent");
        ctl.fail_next_n(FaultOp::Finish, 1);
        let w = b.begin_epoch(2).unwrap();
        w.write_pages(&[(0, &[2])]).unwrap();
        assert_eq!(w.finish().unwrap_err().kind(), io::ErrorKind::Interrupted);
        w.finish().unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1, 2]);
    }

    #[test]
    fn armed_corruption_fails_reads_until_a_rewrite() {
        use crate::backend::write_epoch;
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        write_epoch(&b, 1, vec![(0, vec![1]), (1, vec![2])]).unwrap();
        ctl.corrupt_read_payload(1, 1, 0);
        assert_eq!(
            b.read_page_at(1, 1).unwrap_err().kind(),
            io::ErrorKind::InvalidData,
            "corrupt class"
        );
        assert_eq!(b.read_page_at(1, 0).unwrap().unwrap(), vec![1]);
        assert!(b.read_epoch(1, &mut |_, _| {}).is_err());
        assert_eq!(b.verify_epoch(1).unwrap().corrupt_pages, vec![1]);
        // heal() fixes transport faults, not rot.
        ctl.heal();
        assert!(b.read_page_at(1, 1).is_err());
        // The repair path's rewrite replaces the stored bytes: rot gone.
        b.rewrite_epoch(1, &[(0, vec![1]), (1, vec![2])]).unwrap();
        assert_eq!(ctl.corruptions_armed(), 0);
        assert_eq!(b.read_page_at(1, 1).unwrap().unwrap(), vec![2]);
        assert!(b.verify_epoch(1).unwrap().is_clean());
    }

    #[test]
    fn finish_failure_injection() {
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[0])]).unwrap();
        ctl.fail_finish(true);
        assert!(w.finish().is_err());
        ctl.fail_finish(false);
        w.finish().unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
    }
}
