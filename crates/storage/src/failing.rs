//! Failure-injecting wrapper: drives the committer's and restore's error
//! paths in tests (storage *will* fail in production — the whole point of
//! checkpointing is surviving faults, so the library itself must handle its
//! own substrate failing).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backend::StorageBackend;

/// Shared knob controlling when the wrapped backend starts failing.
#[derive(Debug, Clone, Default)]
pub struct FailureControl {
    /// Writes remaining before page writes start failing (`u64::MAX` =
    /// never).
    writes_until_failure: Arc<AtomicU64>,
    /// When set, `finish_epoch` fails.
    fail_finish: Arc<AtomicU64>,
}

impl FailureControl {
    /// A control that never fails until configured.
    pub fn new() -> Self {
        Self {
            writes_until_failure: Arc::new(AtomicU64::new(u64::MAX)),
            fail_finish: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Let `n` more writes succeed, then fail every subsequent write.
    pub fn fail_writes_after(&self, n: u64) {
        self.writes_until_failure.store(n, Ordering::SeqCst);
    }

    /// Stop injecting write failures.
    pub fn heal(&self) {
        self.writes_until_failure.store(u64::MAX, Ordering::SeqCst);
        self.fail_finish.store(0, Ordering::SeqCst);
    }

    /// Make `finish_epoch` fail.
    pub fn fail_finish(&self, yes: bool) {
        self.fail_finish.store(yes as u64, Ordering::SeqCst);
    }

    fn take_write_token(&self) -> bool {
        let mut cur = self.writes_until_failure.load(Ordering::SeqCst);
        loop {
            if cur == u64::MAX {
                return true; // unlimited
            }
            if cur == 0 {
                return false;
            }
            match self.writes_until_failure.compare_exchange(
                cur,
                cur - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Backend wrapper that fails on command.
#[derive(Debug)]
pub struct FailingBackend<B> {
    inner: B,
    control: FailureControl,
}

impl<B: StorageBackend> FailingBackend<B> {
    /// Wrap `inner`; keep the returned control to trigger failures.
    pub fn new(inner: B) -> (Self, FailureControl) {
        let control = FailureControl::new();
        (
            Self {
                inner,
                control: control.clone(),
            },
            control,
        )
    }

    fn injected() -> io::Error {
        io::Error::other("injected storage failure")
    }
}

impl<B: StorageBackend> StorageBackend for FailingBackend<B> {
    fn begin_epoch(&mut self, epoch: u64) -> io::Result<()> {
        self.inner.begin_epoch(epoch)
    }

    fn write_page(&mut self, page: u64, data: &[u8]) -> io::Result<()> {
        if !self.control.take_write_token() {
            return Err(Self::injected());
        }
        self.inner.write_page(page, data)
    }

    fn finish_epoch(&mut self) -> io::Result<()> {
        if self.control.fail_finish.load(Ordering::SeqCst) != 0 {
            return Err(Self::injected());
        }
        self.inner.finish_epoch()
    }

    fn abort_epoch(&mut self) -> io::Result<()> {
        self.inner.abort_epoch()
    }

    fn put_blob(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get_blob(name)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.inner.epochs()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.inner.read_epoch(epoch, visit)
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;

    #[test]
    fn fails_after_budget_then_heals() {
        let (mut b, ctl) = FailingBackend::new(MemoryBackend::new());
        b.begin_epoch(1).unwrap();
        ctl.fail_writes_after(2);
        b.write_page(0, &[0]).unwrap();
        b.write_page(1, &[1]).unwrap();
        assert!(b.write_page(2, &[2]).is_err());
        assert!(b.write_page(3, &[3]).is_err(), "stays failed");
        ctl.heal();
        b.write_page(4, &[4]).unwrap();
        b.finish_epoch().unwrap();
    }

    #[test]
    fn finish_failure_injection() {
        let (mut b, ctl) = FailingBackend::new(MemoryBackend::new());
        b.begin_epoch(1).unwrap();
        b.write_page(0, &[0]).unwrap();
        ctl.fail_finish(true);
        assert!(b.finish_epoch().is_err());
        ctl.fail_finish(false);
        b.finish_epoch().unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
    }
}
