//! Failure-injecting wrapper: drives the committer's and restore's error
//! paths in tests (storage *will* fail in production — the whole point of
//! checkpointing is surviving faults, so the library itself must handle its
//! own substrate failing).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backend::{EpochWriter, StorageBackend};

/// Shared knob controlling when the wrapped backend starts failing. The
/// counters are atomics: failure budgets stay exact when multiple committer
/// streams write concurrently.
#[derive(Debug, Clone, Default)]
pub struct FailureControl {
    /// Records remaining before page writes start failing (`u64::MAX` =
    /// never).
    writes_until_failure: Arc<AtomicU64>,
    /// When set, `finish` fails.
    fail_finish: Arc<AtomicU64>,
}

impl FailureControl {
    /// A control that never fails until configured.
    pub fn new() -> Self {
        Self {
            writes_until_failure: Arc::new(AtomicU64::new(u64::MAX)),
            fail_finish: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Let `n` more page records succeed, then fail every subsequent write.
    pub fn fail_writes_after(&self, n: u64) {
        self.writes_until_failure.store(n, Ordering::SeqCst);
    }

    /// Stop injecting write failures.
    pub fn heal(&self) {
        self.writes_until_failure.store(u64::MAX, Ordering::SeqCst);
        self.fail_finish.store(0, Ordering::SeqCst);
    }

    /// Make `finish` fail.
    pub fn fail_finish(&self, yes: bool) {
        self.fail_finish.store(yes as u64, Ordering::SeqCst);
    }

    fn take_write_token(&self) -> bool {
        let mut cur = self.writes_until_failure.load(Ordering::SeqCst);
        loop {
            if cur == u64::MAX {
                return true; // unlimited
            }
            if cur == 0 {
                return false;
            }
            match self.writes_until_failure.compare_exchange(
                cur,
                cur - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Backend wrapper that fails on command.
#[derive(Debug)]
pub struct FailingBackend<B> {
    inner: B,
    control: FailureControl,
}

impl<B: StorageBackend> FailingBackend<B> {
    /// Wrap `inner`; keep the returned control to trigger failures.
    pub fn new(inner: B) -> (Self, FailureControl) {
        let control = FailureControl::new();
        (
            Self {
                inner,
                control: control.clone(),
            },
            control,
        )
    }
}

fn injected() -> io::Error {
    io::Error::other("injected storage failure")
}

/// Open-epoch session that consumes one failure token per record.
struct FailingEpochWriter {
    inner: Box<dyn EpochWriter>,
    control: FailureControl,
}

impl EpochWriter for FailingEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        // Consume tokens record by record: a budget of `n` lets exactly `n`
        // records through even when they arrive in one batch.
        let mut allowed = 0;
        for _ in batch {
            if !self.control.take_write_token() {
                break;
            }
            allowed += 1;
        }
        if allowed > 0 {
            self.inner.write_pages(&batch[..allowed])?;
        }
        if allowed < batch.len() {
            return Err(injected());
        }
        Ok(())
    }

    fn finish(&self) -> io::Result<()> {
        if self.control.fail_finish.load(Ordering::SeqCst) != 0 {
            return Err(injected());
        }
        self.inner.finish()
    }

    fn abort(&self) -> io::Result<()> {
        self.inner.abort()
    }
}

impl<B: StorageBackend> StorageBackend for FailingBackend<B> {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        Ok(Box::new(FailingEpochWriter {
            inner: self.inner.begin_epoch(epoch)?,
            control: self.control.clone(),
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get_blob(name)
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        self.inner.epochs()
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        self.inner.read_epoch(epoch, visit)
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn bytes_stored(&self) -> u64 {
        self.inner.bytes_stored()
    }

    fn chain(&self) -> io::Result<Vec<crate::backend::ChainEntry>> {
        self.inner.chain()
    }

    fn supports_compaction(&self) -> bool {
        self.inner.supports_compaction()
    }

    fn compact(&self, up_to: u64) -> io::Result<crate::backend::CompactionStats> {
        self.inner.compact(up_to)
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        self.inner.install_compacted(from, into, records)
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        self.inner.remove_epoch(epoch)
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        self.inner.drain_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;

    #[test]
    fn fails_after_budget_then_heals() {
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        let w = b.begin_epoch(1).unwrap();
        ctl.fail_writes_after(2);
        w.write_pages(&[(0, &[0])]).unwrap();
        w.write_pages(&[(1, &[1])]).unwrap();
        assert!(w.write_pages(&[(2, &[2])]).is_err());
        assert!(w.write_pages(&[(3, &[3])]).is_err(), "stays failed");
        ctl.heal();
        w.write_pages(&[(4, &[4])]).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn budget_applies_within_one_batch() {
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        let w = b.begin_epoch(1).unwrap();
        ctl.fail_writes_after(2);
        let err = w
            .write_pages(&[(0, &[0]), (1, &[1]), (2, &[2])])
            .unwrap_err();
        assert!(err.to_string().contains("injected"));
        ctl.heal();
        w.finish().unwrap();
        // Exactly the two budgeted records made it through.
        let mut pages = Vec::new();
        b.read_epoch(1, &mut |p, _| pages.push(p)).unwrap();
        assert_eq!(pages, vec![0, 1]);
    }

    #[test]
    fn finish_failure_injection() {
        let (b, ctl) = FailingBackend::new(MemoryBackend::new());
        let w = b.begin_epoch(1).unwrap();
        w.write_pages(&[(0, &[0])]).unwrap();
        ctl.fail_finish(true);
        assert!(w.finish().is_err());
        ctl.fail_finish(false);
        w.finish().unwrap();
        assert_eq!(b.epochs().unwrap(), vec![1]);
    }
}
