//! Two-tier storage: a fast inner tier absorbs checkpoints at memory/SSD
//! speed, a background drain moves finished epochs to a slow durable outer
//! tier (the multi-level pipeline of VELOC and DataStates-LLM, applied to
//! this runtime's epoch chain).
//!
//! * [`StorageBackend::begin_epoch`] commits to the **fast** tier only —
//!   checkpoint latency is the fast tier's latency;
//! * [`StorageBackend::drain_one`] copies the oldest not-yet-drained epoch
//!   into the **slow** tier and evicts it from the fast tier (the runtime's
//!   maintenance worker calls this continuously);
//! * when the fast tier already holds `fast_capacity` undrained epochs, the
//!   next `begin_epoch` drains synchronously first — back-pressure instead
//!   of unbounded fast-tier growth;
//! * reads (`epochs`/`read_epoch`/restore) see the union of both tiers, so
//!   an epoch is visible from the moment the fast tier committed it;
//! * `compact` drains everything up to the target first, then folds the
//!   slow tier's chain — the long chain lives (and is bounded) there.
//!
//! Crash story: the fast tier is typically volatile
//! ([`MemoryBackend`](crate::memory::MemoryBackend)), so
//! a crash loses exactly the epochs that had not drained yet — the slow
//! tier always holds a consistent prefix of the chain (drains are
//! oldest-first and each epoch is committed to the slow tier before it is
//! evicted from the fast one). On reconstruction the pending queue is
//! recovered as `fast.epochs() − slow.epochs()`.

use std::collections::VecDeque;
use std::io;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{ChainEntry, CompactionStats, EpochWriter, StorageBackend};
use crate::scrub::{RecordMeta, RepairReport, VerifyReport};

struct TierState {
    /// Epochs committed to the fast tier, not yet on the slow tier;
    /// ascending (pushed on commit, popped by drains).
    pending: VecDeque<u64>,
    /// Highest epoch ever committed through this backend (either tier).
    high_water: Option<u64>,
}

/// Fast tier + slow tier with an explicit drain queue between them.
pub struct TieredBackend {
    fast: Box<dyn StorageBackend>,
    slow: Box<dyn StorageBackend>,
    /// Undrained epochs the fast tier may hold before `begin_epoch` applies
    /// back-pressure (0 = unbounded).
    fast_capacity: usize,
    /// Shared with open epoch writers (they enqueue on `finish`).
    state: Arc<Mutex<TierState>>,
    /// Serialises drains (maintenance worker vs. inline back-pressure)
    /// without blocking commits or reads.
    drain_lock: Mutex<()>,
}

impl TieredBackend {
    /// Build a tiered backend; recovers the pending-drain queue from the
    /// two tiers' committed epochs.
    pub fn new(
        fast: Box<dyn StorageBackend>,
        slow: Box<dyn StorageBackend>,
        fast_capacity: usize,
    ) -> io::Result<Self> {
        let fast_epochs = fast.epochs()?;
        let slow_epochs = slow.epochs()?;
        let pending: VecDeque<u64> = fast_epochs
            .iter()
            .copied()
            .filter(|e| !slow_epochs.contains(e))
            .collect();
        let high_water = fast_epochs.last().copied().max(slow_epochs.last().copied());
        Ok(Self {
            fast,
            slow,
            fast_capacity,
            state: Arc::new(Mutex::new(TierState {
                pending,
                high_water,
            })),
            drain_lock: Mutex::new(()),
        })
    }

    /// The fast (inner) tier.
    pub fn fast(&self) -> &dyn StorageBackend {
        self.fast.as_ref()
    }

    /// The slow (outer) tier.
    pub fn slow(&self) -> &dyn StorageBackend {
        self.slow.as_ref()
    }

    /// Epochs waiting to drain, oldest first.
    pub fn pending_drain(&self) -> Vec<u64> {
        self.state.lock().pending.iter().copied().collect()
    }

    /// Drain until the fast tier holds no finished epoch.
    pub fn drain_all(&self) -> io::Result<u64> {
        let mut n = 0;
        while self.drain_one()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Drain until every epoch `<= up_to` is on the slow tier.
    fn drain_through(&self, up_to: u64) -> io::Result<()> {
        loop {
            let due = self
                .state
                .lock()
                .pending
                .front()
                .is_some_and(|&e| e <= up_to);
            if !due {
                return Ok(());
            }
            if self.drain_one()?.is_none() {
                return Ok(()); // raced another drainer to empty
            }
        }
    }
}

/// Fast-tier epoch session that enqueues the epoch for draining once the
/// fast tier committed it.
struct TieredEpochWriter {
    inner: Box<dyn EpochWriter>,
    state: Arc<Mutex<TierState>>,
    epoch: u64,
}

impl EpochWriter for TieredEpochWriter {
    fn write_pages(&self, batch: &[(u64, &[u8])]) -> io::Result<()> {
        self.inner.write_pages(batch)
    }

    fn finish(&self) -> io::Result<()> {
        self.inner.finish()?;
        let mut st = self.state.lock();
        st.pending.push_back(self.epoch);
        st.high_water = Some(st.high_water.map_or(self.epoch, |h| h.max(self.epoch)));
        Ok(())
    }

    fn abort(&self) -> io::Result<()> {
        self.inner.abort()
    }
}

impl StorageBackend for TieredBackend {
    fn begin_epoch(&self, epoch: u64) -> io::Result<Box<dyn EpochWriter>> {
        {
            let st = self.state.lock();
            if st.high_water.is_some_and(|h| epoch <= h) {
                return Err(io::Error::other(format!(
                    "epoch {epoch} not increasing across tiers"
                )));
            }
        }
        // Back-pressure: the fast tier may not grow past its capacity.
        if self.fast_capacity > 0 {
            while self.state.lock().pending.len() >= self.fast_capacity {
                if self.drain_one()?.is_none() {
                    break; // raced another drainer below capacity
                }
            }
        }
        let inner = self.fast.begin_epoch(epoch)?;
        Ok(Box::new(TieredEpochWriter {
            inner,
            state: Arc::clone(&self.state),
            epoch,
        }))
    }

    fn put_blob(&self, name: &str, data: &[u8]) -> io::Result<()> {
        // Blobs are small metadata: write them straight through to the
        // durable tier (and the fast one for symmetric reads).
        self.slow.put_blob(name, data)?;
        self.fast.put_blob(name, data)
    }

    fn get_blob(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match self.fast.get_blob(name)? {
            Some(v) => Ok(Some(v)),
            None => self.slow.get_blob(name),
        }
    }

    fn epochs(&self) -> io::Result<Vec<u64>> {
        // Read the FAST tier first: a concurrent drain commits an epoch to
        // the slow tier *before* evicting it from the fast one, so
        // fast-then-slow can observe an in-flight epoch twice but never
        // zero times (slow-then-fast could miss it entirely, and a restore
        // over that snapshot would silently drop its pages).
        let mut all = self.fast.epochs()?;
        for e in self.slow.epochs()? {
            if !all.contains(&e) {
                all.push(e);
            }
        }
        all.sort_unstable();
        Ok(all)
    }

    fn read_epoch(&self, epoch: u64, visit: &mut dyn FnMut(u64, &[u8])) -> io::Result<()> {
        // Buffer the fast tier's copy rather than streaming it: if the
        // epoch is mid-drain we must not fall back to the slow tier after
        // having already delivered some records.
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        match self
            .fast
            .read_epoch(epoch, &mut |p, d| records.push((p, d.to_vec())))
        {
            Ok(()) => {
                for (p, d) in records {
                    visit(p, &d);
                }
                Ok(())
            }
            // Not in the fast tier (never was, or evicted after its drain
            // committed): the slow tier is authoritative.
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.slow.read_epoch(epoch, visit),
            Err(e) => Err(e),
        }
    }

    fn epoch_page_ids(&self, epoch: u64) -> io::Result<Vec<u64>> {
        // Same routing as `read_epoch`: the fast tier first, falling back
        // to the slow tier when the epoch drained away.
        match self.fast.epoch_page_ids(epoch) {
            Ok(pages) => Ok(pages),
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.slow.epoch_page_ids(epoch),
            Err(e) => Err(e),
        }
    }

    fn read_page_at(&self, epoch: u64, page: u64) -> io::Result<Option<Vec<u8>>> {
        match self.fast.read_page_at(epoch, page) {
            Ok(hit) => Ok(hit),
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.slow.read_page_at(epoch, page),
            Err(e) => Err(e),
        }
    }

    fn delete_blob(&self, name: &str) -> io::Result<()> {
        // Blobs are written to both tiers; retire them from both.
        self.fast.delete_blob(name)?;
        self.slow.delete_blob(name)
    }

    fn list_blobs(&self) -> io::Result<Vec<String>> {
        let mut all = self.fast.list_blobs()?;
        for name in self.slow.list_blobs()? {
            if !all.contains(&name) {
                all.push(name);
            }
        }
        all.sort();
        Ok(all)
    }

    fn high_water(&self) -> io::Result<Option<u64>> {
        // The in-memory mark covers everything committed through this
        // instance; the tiers' own marks cover retirement history from
        // previous lives (a drained epoch is burned on the fast tier).
        let st = self.state.lock().high_water;
        Ok(st.max(self.fast.high_water()?).max(self.slow.high_water()?))
    }

    fn bytes_written(&self) -> u64 {
        // Logical checkpoint bytes: what the application committed (drain
        // copies to the slow tier are internal traffic).
        self.fast.bytes_written()
    }

    fn bytes_stored(&self) -> u64 {
        self.fast.bytes_stored()
    }

    fn supports_compaction(&self) -> bool {
        // Folds happen on the slow tier (see `compact`).
        self.slow.supports_compaction()
    }

    fn chain(&self) -> io::Result<Vec<ChainEntry>> {
        // Fast tier first — same drain-race reasoning as `epochs`. For an
        // epoch present in both tiers the slow entry wins: compaction runs
        // on the slow tier, so only it can carry a `Full` kind.
        let fast = self.fast.chain()?;
        let mut chain = self.slow.chain()?;
        let on_slow: Vec<u64> = chain.iter().map(|c| c.epoch).collect();
        for c in fast {
            if !on_slow.contains(&c.epoch) {
                chain.push(c);
            }
        }
        chain.sort_unstable_by_key(|c| c.epoch);
        Ok(chain)
    }

    fn compact(&self, up_to: u64) -> io::Result<CompactionStats> {
        // The long-lived chain is the slow tier's; fold it there, draining
        // whatever part of the target range is still in the fast tier.
        self.drain_through(up_to)?;
        self.slow.compact(up_to)
    }

    fn install_compacted(
        &self,
        from: u64,
        into: u64,
        records: &[(u64, Vec<u8>)],
    ) -> io::Result<()> {
        // A wrapper above this backend (e.g. `ParityBackend`) may run the
        // default merge itself and install through this primitive. The full
        // segment belongs on the durable tier, so everything it supersedes
        // must have drained there first.
        self.drain_through(into)?;
        self.slow.install_compacted(from, into, records)
    }

    fn remove_epoch(&self, epoch: u64) -> io::Result<()> {
        if self.fast.epochs()?.contains(&epoch) {
            self.fast.remove_epoch(epoch)?;
            self.state.lock().pending.retain(|&e| e != epoch);
            Ok(())
        } else {
            self.slow.remove_epoch(epoch)
        }
    }

    fn remove_epochs(&self, epochs: &[u64]) -> io::Result<()> {
        // Audit fix: the trait default loops `remove_epoch`, which pays one
        // fast-tier `epochs()` probe per epoch and loses the slow tier's
        // batched retirement (one manifest fsync for the whole batch on the
        // file backend). Partition once, then batch per tier.
        let on_fast = self.fast.epochs()?;
        let (fast_part, slow_part): (Vec<u64>, Vec<u64>) =
            epochs.iter().copied().partition(|e| on_fast.contains(e));
        if !fast_part.is_empty() {
            self.fast.remove_epochs(&fast_part)?;
            self.state.lock().pending.retain(|e| !fast_part.contains(e));
        }
        if !slow_part.is_empty() {
            self.slow.remove_epochs(&slow_part)?;
        }
        Ok(())
    }

    fn io_stats(&self) -> crate::io::IoStats {
        self.fast.io_stats().merged(self.slow.io_stats())
    }

    // Integrity surfaces route like the read path: whichever tier holds the
    // epoch answers (fast first, slow on NotFound — a drained epoch's
    // at-rest life is on the slow tier, which is exactly where bitrot has
    // the most time to accumulate).

    fn verify_epoch(&self, epoch: u64) -> io::Result<VerifyReport> {
        match self.fast.verify_epoch(epoch) {
            Ok(report) => Ok(report),
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.slow.verify_epoch(epoch),
            Err(e) => Err(e),
        }
    }

    fn rewrite_epoch(&self, epoch: u64, records: &[(u64, Vec<u8>)]) -> io::Result<()> {
        match self.fast.rewrite_epoch(epoch, records) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.slow.rewrite_epoch(epoch, records)
            }
            Err(e) => Err(e),
        }
    }

    fn repair_epoch(&self, epoch: u64) -> io::Result<RepairReport> {
        match self.fast.repair_epoch(epoch) {
            Ok(report) => Ok(report),
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.slow.repair_epoch(epoch),
            Err(fast_err) => {
                // The fast tier holds the epoch but cannot heal itself
                // (plain store, or its own redundancy is exhausted). A
                // drained copy on the durable tier is a redundant source:
                // rebuild the fast copy wholesale from the slow tier's
                // verified-clean records.
                match self.slow.verify_epoch(epoch) {
                    Ok(report) if report.is_clean() => {}
                    _ => return Err(fast_err),
                }
                let mut records = Vec::new();
                self.slow
                    .read_epoch(epoch, &mut |page, data| records.push((page, data.to_vec())))?;
                self.fast.rewrite_epoch(epoch, &records)?;
                Ok(RepairReport {
                    epoch,
                    pages: records.iter().map(|(p, _)| *p).collect(),
                    rewrote_segment: true,
                    source: "slow tier".to_string(),
                })
            }
        }
    }

    fn record_meta(&self, epoch: u64, page: u64) -> io::Result<Option<RecordMeta>> {
        match self.fast.record_meta(epoch, page) {
            Ok(meta) => Ok(meta),
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.slow.record_meta(epoch, page),
            Err(e) => Err(e),
        }
    }

    fn drain_backlog(&self) -> usize {
        self.state.lock().pending.len()
    }

    fn drain_one(&self) -> io::Result<Option<u64>> {
        let _serial = self.drain_lock.lock();
        let Some(&epoch) = self.state.lock().pending.front() else {
            return Ok(None);
        };
        // A previous attempt may have committed the copy and then failed
        // the fast-tier eviction; re-running begin_epoch would then be
        // rejected forever ("epoch not increasing"). Detect and resume at
        // the eviction, exactly as `new`'s recovery would.
        if !self.slow.epochs()?.contains(&epoch) {
            // Copy fast → slow. Buffered: the epoch is bounded by the fast
            // tier's capacity, and the slow tier wants batched writes
            // anyway.
            let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
            self.fast
                .read_epoch(epoch, &mut |p, d| records.push((p, d.to_vec())))?;
            let writer = self.slow.begin_epoch(epoch)?;
            let result = (|| {
                for (page, data) in &records {
                    writer.write_pages(&[(*page, data)])?;
                }
                writer.finish()
            })();
            if let Err(e) = result {
                let _ = writer.abort();
                return Err(e);
            }
        }
        // The epoch is durable on the slow tier: evict it from the fast
        // tier and release the queue slot. The queue only pops once the
        // eviction succeeded, so `pending` stays truthful (a failed
        // eviction is retried by the next drain, skipping the copy).
        self.fast.remove_epoch(epoch)?;
        self.state.lock().pending.pop_front();
        Ok(Some(epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_epoch;
    use crate::image::CheckpointImage;
    use crate::memory::MemoryBackend;

    fn tiered(capacity: usize) -> (TieredBackend, MemoryBackend, MemoryBackend) {
        let (fast, fast_view) = MemoryBackend::shared();
        let (slow, slow_view) = MemoryBackend::shared();
        (
            TieredBackend::new(Box::new(fast), Box::new(slow), capacity).unwrap(),
            fast_view,
            slow_view,
        )
    }

    #[test]
    fn commits_land_fast_and_drain_slow() {
        let (t, fast, slow) = tiered(0);
        write_epoch(&t, 1, vec![(0, vec![1])]).unwrap();
        write_epoch(&t, 2, vec![(1, vec![2])]).unwrap();
        assert_eq!(fast.epochs().unwrap(), vec![1, 2]);
        assert!(slow.epochs().unwrap().is_empty());
        assert_eq!(t.pending_drain(), vec![1, 2]);
        assert_eq!(t.epochs().unwrap(), vec![1, 2], "union view");

        assert_eq!(t.drain_one().unwrap(), Some(1), "oldest first");
        assert_eq!(slow.epochs().unwrap(), vec![1]);
        assert_eq!(fast.epochs().unwrap(), vec![2], "evicted after drain");
        assert_eq!(t.drain_all().unwrap(), 1);
        assert_eq!(t.drain_one().unwrap(), None);
        assert_eq!(slow.epochs().unwrap(), vec![1, 2]);
        assert_eq!(t.epochs().unwrap(), vec![1, 2]);

        // The image is identical whichever tier serves it.
        let img = CheckpointImage::load(&t, 2).unwrap();
        assert_eq!(img.page(0), Some(&[1u8][..]));
        assert_eq!(img.page(1), Some(&[2u8][..]));
    }

    #[test]
    fn capacity_applies_backpressure() {
        let (t, fast, slow) = tiered(2);
        write_epoch(&t, 1, vec![(0, vec![1])]).unwrap();
        write_epoch(&t, 2, vec![(1, vec![2])]).unwrap();
        // Third commit must synchronously drain the oldest epoch first.
        write_epoch(&t, 3, vec![(2, vec![3])]).unwrap();
        assert_eq!(slow.epochs().unwrap(), vec![1], "epoch 1 force-drained");
        assert!(fast.epochs().unwrap().len() <= 2);
        assert_eq!(t.pending_drain(), vec![2, 3]);
    }

    #[test]
    fn pending_queue_recovers_from_tiers() {
        let (fast, fast_view) = MemoryBackend::shared();
        let (slow, slow_view) = MemoryBackend::shared();
        write_epoch(&fast_view, 1, vec![(0, vec![1])]).unwrap();
        write_epoch(&fast_view, 2, vec![(1, vec![2])]).unwrap();
        write_epoch(&slow_view, 1, vec![(0, vec![1])]).unwrap();
        let t = TieredBackend::new(Box::new(fast), Box::new(slow), 0).unwrap();
        assert_eq!(t.pending_drain(), vec![2], "only the undrained epoch");
        assert!(t.begin_epoch(2).is_err(), "numbering spans both tiers");
    }

    #[test]
    fn compact_drains_then_folds_the_slow_chain() {
        let (t, fast, slow) = tiered(0);
        write_epoch(&t, 1, vec![(0, vec![1]), (1, vec![1])]).unwrap();
        write_epoch(&t, 2, vec![(1, vec![2])]).unwrap();
        write_epoch(&t, 3, vec![(2, vec![3])]).unwrap();
        let stats = t.compact(3).unwrap();
        assert_eq!((stats.from, stats.into), (1, 3));
        assert!(fast.epochs().unwrap().is_empty(), "all drained");
        assert_eq!(slow.epochs().unwrap(), vec![3], "slow chain folded");
        let img = CheckpointImage::load(&t, 3).unwrap();
        assert_eq!(img.page(0), Some(&[1u8][..]));
        assert_eq!(img.page(1), Some(&[2u8][..]));
        assert_eq!(img.page(2), Some(&[3u8][..]));
    }

    #[test]
    fn drain_resumes_after_a_failed_eviction() {
        // State left by a drain that committed the copy but failed the
        // fast-tier eviction: the epoch exists on BOTH tiers and is still
        // pending. The retry must skip the copy (begin_epoch would reject
        // the duplicate) and go straight to the eviction.
        let (t, fast, slow) = tiered(0);
        write_epoch(&t, 1, vec![(0, vec![1])]).unwrap();
        write_epoch(&slow, 1, vec![(0, vec![1])]).unwrap();
        assert_eq!(t.pending_drain(), vec![1]);
        assert_eq!(t.drain_one().unwrap(), Some(1));
        assert!(fast.epochs().unwrap().is_empty(), "eviction completed");
        assert_eq!(slow.epochs().unwrap(), vec![1]);
        assert!(t.pending_drain().is_empty());
        // The union view never showed the epoch twice.
        assert_eq!(t.epochs().unwrap(), vec![1]);
    }

    #[test]
    fn blobs_reach_the_durable_tier() {
        let (t, _fast, slow) = tiered(0);
        t.put_blob("layout", b"x").unwrap();
        assert_eq!(slow.get_blob("layout").unwrap().unwrap(), b"x");
        assert_eq!(t.get_blob("layout").unwrap().unwrap(), b"x");
    }
}
