//! The checkpoint manifest: a tiny append-only binary log recording which
//! epochs are durably complete and how the chain has been compacted.
//!
//! An epoch's segment file only "counts" once its manifest record exists —
//! the record is appended *after* the segment is fsynced, so a crash during
//! checkpointing can never yield a half-written checkpoint that restore
//! would trust. (This is the standard write-ahead ordering for atomic
//! commit; hand-rolled here because the format is a few dozen bytes per
//! record and a serde dependency would be heavier than the format itself.)
//!
//! ## Versions
//!
//! * `AICKMAN1` — the original format: 24-byte records, every record a
//!   plain (delta) epoch commit. Still read transparently.
//! * `AICKMAN2` — adds a record *kind* and an auxiliary field:
//!   - [`RecordKind::Delta`] — an incremental epoch commit (v1 semantics);
//!   - [`RecordKind::Full`] — epoch `epoch` is a *full* segment covering
//!     every live epoch `aux ..= epoch`; it supersedes all earlier live
//!     epochs (appended as the atomic commit point of a compaction);
//!   - [`RecordKind::CompactedInto`] — epoch `epoch` was retired from this
//!     backend; `aux` names the epoch that absorbed it (0 when it was
//!     drained to another tier rather than folded locally).
//!
//! New manifests are written as v2. Appending a `Delta` record to an
//! existing v1 manifest keeps the file v1 (old readers stay compatible);
//! the first non-delta append migrates the file to v2 atomically
//! (write-temp + rename).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic prefix of a version-1 manifest (delta-only records).
pub const MANIFEST_MAGIC_V1: &[u8; 8] = b"AICKMAN1";

/// Magic prefix of a version-2 manifest (kinded records).
pub const MANIFEST_MAGIC_V2: &[u8; 8] = b"AICKMAN2";

/// Magic prefix of a freshly created manifest (compat alias: pre-v2 code
/// referred to "the" manifest magic).
pub const MANIFEST_MAGIC: &[u8; 8] = MANIFEST_MAGIC_V1;

/// What a manifest record says about its epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordKind {
    /// Incremental epoch commit (the only kind v1 could express).
    #[default]
    Delta,
    /// The epoch's segment is a full image superseding all earlier live
    /// epochs; `aux` records the oldest epoch it folded.
    Full,
    /// The epoch was retired: folded into epoch `aux` by compaction, or
    /// drained to another tier (`aux == 0`).
    CompactedInto,
}

impl RecordKind {
    fn to_wire(self) -> u8 {
        match self {
            RecordKind::Delta => 0,
            RecordKind::Full => 1,
            RecordKind::CompactedInto => 2,
        }
    }

    fn from_wire(b: u8) -> io::Result<Self> {
        match b {
            0 => Ok(RecordKind::Delta),
            1 => Ok(RecordKind::Full),
            2 => Ok(RecordKind::CompactedInto),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown manifest record kind {other}"),
            )),
        }
    }
}

/// One manifest entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManifestRecord {
    /// Epoch (checkpoint) number.
    pub epoch: u64,
    /// Number of page records in the segment (0 for `CompactedInto`).
    pub records: u64,
    /// Total payload bytes (excluding framing).
    pub payload_bytes: u64,
    /// What this record means for the chain.
    pub kind: RecordKind,
    /// Kind-dependent companion epoch (see [`RecordKind`]).
    pub aux: u64,
}

impl ManifestRecord {
    /// A plain epoch commit (what v1 appended).
    pub fn delta(epoch: u64, records: u64, payload_bytes: u64) -> Self {
        Self {
            epoch,
            records,
            payload_bytes,
            kind: RecordKind::Delta,
            aux: 0,
        }
    }

    /// A compaction commit: `epoch`'s segment is now a full image folding
    /// the live chain since `from`.
    pub fn full(epoch: u64, records: u64, payload_bytes: u64, from: u64) -> Self {
        Self {
            epoch,
            records,
            payload_bytes,
            kind: RecordKind::Full,
            aux: from,
        }
    }

    /// A retirement: `epoch` is gone from this backend (`into == 0` means
    /// drained elsewhere, not folded locally).
    pub fn compacted_into(epoch: u64, into: u64) -> Self {
        Self {
            epoch,
            records: 0,
            payload_bytes: 0,
            kind: RecordKind::CompactedInto,
            aux: into,
        }
    }

    const WIRE_LEN_V1: usize = 24;
    const WIRE_LEN_V2: usize = 33;

    fn to_bytes_v1(self) -> [u8; Self::WIRE_LEN_V1] {
        debug_assert_eq!(self.kind, RecordKind::Delta, "v1 stores deltas only");
        let mut out = [0u8; Self::WIRE_LEN_V1];
        out[0..8].copy_from_slice(&self.epoch.to_le_bytes());
        out[8..16].copy_from_slice(&self.records.to_le_bytes());
        out[16..24].copy_from_slice(&self.payload_bytes.to_le_bytes());
        out
    }

    fn from_bytes_v1(b: &[u8]) -> Self {
        Self {
            epoch: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            records: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            payload_bytes: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            kind: RecordKind::Delta,
            aux: 0,
        }
    }

    fn to_bytes_v2(self) -> [u8; Self::WIRE_LEN_V2] {
        let mut out = [0u8; Self::WIRE_LEN_V2];
        out[0] = self.kind.to_wire();
        out[1..9].copy_from_slice(&self.epoch.to_le_bytes());
        out[9..17].copy_from_slice(&self.records.to_le_bytes());
        out[17..25].copy_from_slice(&self.payload_bytes.to_le_bytes());
        out[25..33].copy_from_slice(&self.aux.to_le_bytes());
        out
    }

    fn from_bytes_v2(b: &[u8]) -> io::Result<Self> {
        Ok(Self {
            kind: RecordKind::from_wire(b[0])?,
            epoch: u64::from_le_bytes(b[1..9].try_into().unwrap()),
            records: u64::from_le_bytes(b[9..17].try_into().unwrap()),
            payload_bytes: u64::from_le_bytes(b[17..25].try_into().unwrap()),
            aux: u64::from_le_bytes(b[25..33].try_into().unwrap()),
        })
    }
}

fn read_raw(path: &Path) -> io::Result<Option<Vec<u8>>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(Some(buf))
}

fn parse(buf: &[u8]) -> io::Result<Vec<ManifestRecord>> {
    let magic_len = MANIFEST_MAGIC_V1.len();
    if buf.len() < magic_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad manifest magic",
        ));
    }
    let body = &buf[magic_len..];
    match &buf[..magic_len] {
        m if m == MANIFEST_MAGIC_V1 => {
            // Torn trailing record (crash mid-append) is ignored, matching
            // the commit protocol: the epoch never became visible.
            Ok(body
                .chunks_exact(ManifestRecord::WIRE_LEN_V1)
                .map(ManifestRecord::from_bytes_v1)
                .collect())
        }
        m if m == MANIFEST_MAGIC_V2 => body
            .chunks_exact(ManifestRecord::WIRE_LEN_V2)
            .map(ManifestRecord::from_bytes_v2)
            .collect(),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad manifest magic",
        )),
    }
}

/// Append one record, durably (O_APPEND + fsync). Creates the manifest (v2)
/// with its magic header on first use; appends format-preserving records to
/// a v1 manifest and migrates it to v2 atomically when a non-delta record
/// must be stored.
pub fn append(path: &Path, record: ManifestRecord) -> io::Result<()> {
    append_batch(path, &[record])
}

/// Append a batch of records as one durable commit: every record is written
/// in order and the file is fsynced **once**, so N retirements (or a
/// coordinated group's worth of commits) cost one manifest fsync instead of
/// N. The batch is all-or-nothing under the same torn-tail rule as single
/// appends: a crash mid-batch leaves a tear that readers ignore and the
/// next append truncates away — so callers must not treat *any* record of
/// the batch as committed until `append_batch` returns.
///
/// Versioning matches [`append`]: an all-delta batch keeps a v1 file v1;
/// any non-delta record migrates it to v2 atomically.
pub fn append_batch(path: &Path, records: &[ManifestRecord]) -> io::Result<()> {
    if records.is_empty() {
        return Ok(());
    }
    // Peek only the magic — appends must stay O(1) in manifest size.
    let mut magic = [0u8; 8];
    let version = match File::open(path) {
        Ok(mut f) => {
            f.read_exact(&mut magic)?;
            if magic == *MANIFEST_MAGIC_V1 {
                1
            } else if magic == *MANIFEST_MAGIC_V2 {
                2
            } else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad manifest magic",
                ));
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    if version != 0 {
        // A crash mid-append can leave a torn trailing record. Readers
        // ignore it, but appending *after* it would misalign every future
        // record — truncate the tear away before the new commit lands.
        let rec_len = if version == 1 {
            ManifestRecord::WIRE_LEN_V1
        } else {
            ManifestRecord::WIRE_LEN_V2
        } as u64;
        let len = std::fs::metadata(path)?.len();
        let torn = (len - magic.len() as u64) % rec_len;
        if torn != 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(len - torn)?;
            f.sync_all()?;
        }
    }
    let all_deltas = records.iter().all(|r| r.kind == RecordKind::Delta);
    match version {
        0 => {
            // First use: build the file aside and rename it in. Creating
            // the manifest in place would let a concurrent reader (e.g. a
            // `chain()` racing the very first commit) open it between
            // creation and the magic write and reject the 0-byte file as
            // foreign; with the rename a reader sees NotFound (empty log)
            // or the complete file, never anything between.
            let tmp = path.with_extension("new");
            let mut f = File::create(&tmp)?;
            let mut buf = MANIFEST_MAGIC_V2.to_vec();
            for r in records {
                buf.extend_from_slice(&r.to_bytes_v2());
            }
            f.write_all(&buf)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        }
        1 if all_deltas => {
            // Keep the file v1: old readers stay compatible.
            let mut f = OpenOptions::new().append(true).open(path)?;
            let mut buf = Vec::with_capacity(records.len() * ManifestRecord::WIRE_LEN_V1);
            for r in records {
                buf.extend_from_slice(&r.to_bytes_v1());
            }
            f.write_all(&buf)?;
            f.sync_all()
        }
        1 => {
            // First non-delta record: migrate to v2 atomically.
            let existing = read(path)?;
            let tmp = path.with_extension("mig");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(MANIFEST_MAGIC_V2)?;
                for r in existing.iter().chain(records) {
                    f.write_all(&r.to_bytes_v2())?;
                }
                f.sync_all()?;
            }
            std::fs::rename(&tmp, path)
        }
        _ => {
            let mut f = OpenOptions::new().append(true).open(path)?;
            let mut buf = Vec::with_capacity(records.len() * ManifestRecord::WIRE_LEN_V2);
            for r in records {
                buf.extend_from_slice(&r.to_bytes_v2());
            }
            f.write_all(&buf)?;
            f.sync_all()
        }
    }
}

/// Read all complete records of either manifest version; a torn trailing
/// record (crash mid-append) is ignored, matching the commit protocol.
pub fn read(path: &Path) -> io::Result<Vec<ManifestRecord>> {
    match read_raw(path)? {
        None => Ok(Vec::new()),
        Some(buf) => parse(&buf),
    }
}

/// The live chain implied by a record log: fold commits, compactions and
/// retirements into the record list a restore may replay, ascending by
/// epoch.
///
/// * `Delta{e}` adds `e`;
/// * `Full{e}` replaces every live epoch `<= e` with one full entry at `e`
///   (compaction always folds the live prefix);
/// * `CompactedInto{e}` removes `e`.
pub fn fold_live(records: &[ManifestRecord]) -> Vec<ManifestRecord> {
    let mut live: std::collections::BTreeMap<u64, ManifestRecord> =
        std::collections::BTreeMap::new();
    for r in records {
        match r.kind {
            RecordKind::Delta => {
                live.insert(r.epoch, *r);
            }
            RecordKind::Full => {
                live.retain(|&e, _| e > r.epoch);
                live.insert(r.epoch, *r);
            }
            RecordKind::CompactedInto => {
                live.remove(&r.epoch);
            }
        }
    }
    live.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aickpt-manifest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("MANIFEST")
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        assert!(read(&path).unwrap().is_empty(), "missing file = no records");
        let r1 = ManifestRecord::delta(1, 10, 40960);
        let r2 = ManifestRecord::delta(2, 3, 12288);
        append(&path, r1).unwrap();
        append(&path, r2).unwrap();
        assert_eq!(read(&path).unwrap(), vec![r1, r2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kinded_records_round_trip() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let records = vec![
            ManifestRecord::delta(1, 4, 64),
            ManifestRecord::delta(2, 1, 16),
            ManifestRecord::full(2, 5, 80, 1),
            ManifestRecord::compacted_into(3, 0),
        ];
        for r in &records {
            append(&path, *r).unwrap();
        }
        assert_eq!(read(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let r = ManifestRecord::delta(7, 1, 8);
        append(&path, r).unwrap();
        // Simulate a crash mid-append: write half a record.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0u8; 10]).unwrap();
        }
        assert_eq!(read(&path).unwrap(), vec![r], "torn record dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_torn_tail_realigns() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let r1 = ManifestRecord::delta(1, 1, 8);
        append(&path, r1).unwrap();
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; 21]).unwrap(); // crash mid-append
        }
        let r2 = ManifestRecord::full(1, 1, 8, 1);
        append(&path, r2).unwrap();
        assert_eq!(read(&path).unwrap(), vec![r1, r2], "tear excised");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_an_error() {
        let path = tmp();
        std::fs::write(&path, b"NOTMAGIC____________________").unwrap();
        assert!(read(&path).is_err());
        assert!(append(&path, ManifestRecord::delta(1, 0, 0)).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Hand-write a v1 manifest exactly as the old code would have.
    fn write_v1(path: &Path, records: &[ManifestRecord]) {
        let mut buf = MANIFEST_MAGIC_V1.to_vec();
        for r in records {
            buf.extend_from_slice(&r.to_bytes_v1());
        }
        std::fs::write(path, buf).unwrap();
    }

    #[test]
    fn v1_manifests_read_as_deltas() {
        let path = tmp();
        let records = vec![
            ManifestRecord::delta(1, 2, 100),
            ManifestRecord::delta(2, 1, 50),
        ];
        write_v1(&path, &records);
        assert_eq!(read(&path).unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn delta_append_keeps_v1_format() {
        let path = tmp();
        write_v1(&path, &[ManifestRecord::delta(1, 1, 8)]);
        append(&path, ManifestRecord::delta(2, 2, 16)).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert!(raw.starts_with(MANIFEST_MAGIC_V1), "still v1 on disk");
        assert_eq!(read(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_delta_append_migrates_v1_to_v2() {
        let path = tmp();
        write_v1(
            &path,
            &[
                ManifestRecord::delta(1, 1, 8),
                ManifestRecord::delta(2, 1, 8),
            ],
        );
        let full = ManifestRecord::full(2, 2, 16, 1);
        append(&path, full).unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert!(raw.starts_with(MANIFEST_MAGIC_V2), "migrated to v2");
        assert_eq!(
            read(&path).unwrap(),
            vec![
                ManifestRecord::delta(1, 1, 8),
                ManifestRecord::delta(2, 1, 8),
                full
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_commits_all_records_in_order() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let batch = vec![
            ManifestRecord::delta(1, 1, 8),
            ManifestRecord::compacted_into(1, 0),
            ManifestRecord::delta(2, 2, 16),
        ];
        append_batch(&path, &batch).unwrap();
        assert_eq!(read(&path).unwrap(), batch);
        // Empty batch is a no-op, even on a missing file.
        append_batch(&path, &[]).unwrap();
        assert_eq!(read(&path).unwrap().len(), 3);
        // A later batch appends after the existing records.
        append_batch(&path, &[ManifestRecord::delta(3, 1, 8)]).unwrap();
        assert_eq!(read(&path).unwrap().len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_batch_versioning_matches_single_appends() {
        // All-delta batch keeps a v1 file v1.
        let path = tmp();
        write_v1(&path, &[ManifestRecord::delta(1, 1, 8)]);
        append_batch(
            &path,
            &[
                ManifestRecord::delta(2, 1, 8),
                ManifestRecord::delta(3, 1, 8),
            ],
        )
        .unwrap();
        assert!(std::fs::read(&path).unwrap().starts_with(MANIFEST_MAGIC_V1));
        assert_eq!(read(&path).unwrap().len(), 3);
        // A batch containing any non-delta record migrates to v2, keeping
        // every record of the batch.
        let batch = vec![
            ManifestRecord::compacted_into(1, 3),
            ManifestRecord::compacted_into(2, 3),
            ManifestRecord::full(3, 2, 16, 1),
        ];
        append_batch(&path, &batch).unwrap();
        assert!(std::fs::read(&path).unwrap().starts_with(MANIFEST_MAGIC_V2));
        let all = read(&path).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(&all[3..], &batch[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fold_live_applies_compactions() {
        let log = vec![
            ManifestRecord::delta(1, 1, 8),
            ManifestRecord::delta(2, 1, 8),
            ManifestRecord::delta(3, 1, 8),
            ManifestRecord::delta(4, 1, 8),
            // Compaction of 1..=3 committed while epoch 4 already exists.
            ManifestRecord::full(3, 3, 24, 1),
            // Epoch 4 drained to another tier.
            ManifestRecord::compacted_into(4, 0),
        ];
        let kinds = |rs: &[ManifestRecord]| {
            fold_live(rs)
                .iter()
                .map(|r| (r.epoch, r.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(kinds(&log), vec![(3, RecordKind::Full)]);
        assert_eq!(
            kinds(&log[..5]),
            vec![(3, RecordKind::Full), (4, RecordKind::Delta)]
        );
        assert_eq!(
            kinds(&log[..3]),
            vec![
                (1, RecordKind::Delta),
                (2, RecordKind::Delta),
                (3, RecordKind::Delta)
            ]
        );
        // The live full record keeps its own counts, not the delta's.
        assert_eq!(fold_live(&log)[0].records, 3);
    }
}
