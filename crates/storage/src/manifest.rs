//! The checkpoint manifest: a tiny append-only binary log recording which
//! epochs are durably complete.
//!
//! An epoch's segment file only "counts" once its manifest record exists —
//! the record is appended *after* the segment is fsynced, so a crash during
//! checkpointing can never yield a half-written checkpoint that restore
//! would trust. (This is the standard write-ahead ordering for atomic
//! commit; hand-rolled here because the format is 24 bytes per record and a
//! serde dependency would be heavier than the format itself.)

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic prefix of a manifest file (8 bytes, versioned).
pub const MANIFEST_MAGIC: &[u8; 8] = b"AICKMAN1";

/// One durably finished epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestRecord {
    /// Epoch (checkpoint) number.
    pub epoch: u64,
    /// Number of page records in the segment.
    pub records: u64,
    /// Total payload bytes (excluding framing).
    pub payload_bytes: u64,
}

impl ManifestRecord {
    const WIRE_LEN: usize = 24;

    fn to_bytes(self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..8].copy_from_slice(&self.epoch.to_le_bytes());
        out[8..16].copy_from_slice(&self.records.to_le_bytes());
        out[16..24].copy_from_slice(&self.payload_bytes.to_le_bytes());
        out
    }

    fn from_bytes(b: &[u8]) -> Self {
        Self {
            epoch: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            records: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            payload_bytes: u64::from_le_bytes(b[16..24].try_into().unwrap()),
        }
    }
}

/// Append one record, durably (O_APPEND + fsync). Creates the manifest with
/// its magic header on first use.
pub fn append(path: &Path, record: ManifestRecord) -> io::Result<()> {
    let fresh = !path.exists();
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    if fresh {
        f.write_all(MANIFEST_MAGIC)?;
    }
    f.write_all(&record.to_bytes())?;
    f.sync_all()?;
    Ok(())
}

/// Read all complete records; a torn trailing record (crash mid-append) is
/// ignored, matching the commit protocol above.
pub fn read(path: &Path) -> io::Result<Vec<ManifestRecord>> {
    let mut f = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    if buf.len() < MANIFEST_MAGIC.len() || &buf[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad manifest magic",
        ));
    }
    let body = &buf[MANIFEST_MAGIC.len()..];
    let mut records = Vec::with_capacity(body.len() / ManifestRecord::WIRE_LEN);
    for chunk in body.chunks_exact(ManifestRecord::WIRE_LEN) {
        records.push(ManifestRecord::from_bytes(chunk));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aickpt-manifest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("MANIFEST")
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        assert!(read(&path).unwrap().is_empty(), "missing file = no records");
        let r1 = ManifestRecord {
            epoch: 1,
            records: 10,
            payload_bytes: 40960,
        };
        let r2 = ManifestRecord {
            epoch: 2,
            records: 3,
            payload_bytes: 12288,
        };
        append(&path, r1).unwrap();
        append(&path, r2).unwrap();
        assert_eq!(read(&path).unwrap(), vec![r1, r2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let r = ManifestRecord {
            epoch: 7,
            records: 1,
            payload_bytes: 8,
        };
        append(&path, r).unwrap();
        // Simulate a crash mid-append: write half a record.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF; 10]).unwrap();
        }
        assert_eq!(read(&path).unwrap(), vec![r], "torn record dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_an_error() {
        let path = tmp();
        std::fs::write(&path, b"NOTMAGIC____________________").unwrap();
        assert!(read(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
