//! Flush-ordering policies: the paper's adaptive strategy (Algorithm 4) and
//! the baselines / ablations it is compared against.
//!
//! A [`FlushPlan`] is built once per checkpoint request from the previous
//! epoch's records. It is a set of priority queues that the engine drains;
//! the *dynamic* adaptations (the `WaitedPage` hint and the preference for
//! pages that triggered a copy-on-write in the current epoch) are layered on
//! top by the engine itself, because they react to events after the plan was
//! built.

use crate::history::EpochRecord;
use crate::page::{AccessType, PageId};
use crate::rng::SplitMix64;

/// Which static flush order to use for a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The paper's `our-approach` (Algorithm 4): last-epoch `WAIT` pages
    /// first, then last-epoch `COW`, then `AVOIDED`, then the rest; ties
    /// broken by ascending last-epoch access order (`LastIndex`).
    Adaptive,
    /// The paper's `async-no-pattern` baseline: ascending page address.
    AddressOrder,
    /// Ablation: pure last-epoch access order (temporal history only, no
    /// access-type buckets).
    AccessOrder,
    /// Adversarial ablation: descending page address.
    ReverseAddress,
    /// Ablation: uniformly random order from the given seed.
    Random(u64),
}

impl SchedulerKind {
    /// Stable label used by reports and the figure harness.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Adaptive => "adaptive",
            SchedulerKind::AddressOrder => "address-order",
            SchedulerKind::AccessOrder => "access-order",
            SchedulerKind::ReverseAddress => "reverse-address",
            SchedulerKind::Random(_) => "random",
        }
    }
}

/// Priority bucket identifiers for introspection / tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// Last-epoch `WAIT` pages (Algorithm 4, line 8).
    LastWait,
    /// Last-epoch `COW` pages (line 11).
    LastCow,
    /// Last-epoch `AVOIDED` pages (line 14).
    LastAvoided,
    /// Everything else (line 17).
    Rest,
}

/// A static flush order for one checkpoint: priority queues drained front to
/// back. Every scheduled page appears exactly once across all queues.
#[derive(Debug)]
pub struct FlushPlan {
    queues: Vec<Vec<PageId>>,
    queue_idx: usize,
    pos: usize,
    total: usize,
    /// Entries not yet popped by [`FlushPlan::next`] (whether they will be
    /// yielded or skipped): keeps [`FlushPlan::remaining`] O(1) instead of
    /// re-summing queue suffixes on every call.
    left: usize,
}

impl FlushPlan {
    /// Build the plan for `kind` from the previous epoch's records.
    ///
    /// `last` supplies `LastDirty` (the pages to schedule), `LastAT` and
    /// `LastIndex`. Building is O(n log n) in the number of scheduled pages
    /// and happens in normal (non-signal) context at the checkpoint request.
    ///
    /// `discard_page` tombstones (dirty-list entries whose access type
    /// reverted to `UNTOUCHED`) are filtered out here, so every queue entry
    /// is a genuinely scheduled page and `planned()`/`remaining()` agree
    /// with the engine's scheduled count — the committer never skip-scans
    /// dead entries.
    pub fn build(kind: SchedulerKind, last: &EpochRecord) -> Self {
        let dirty: Vec<PageId> = last
            .dirty()
            .iter()
            .copied()
            .filter(|&p| last.access_type(p) != AccessType::Untouched)
            .collect();
        let dirty = dirty.as_slice();
        let queues = match kind {
            SchedulerKind::Adaptive => {
                let mut wait = Vec::new();
                let mut cow = Vec::new();
                let mut avoided = Vec::new();
                let mut rest = Vec::new();
                for &p in dirty {
                    match last.access_type(p) {
                        AccessType::Wait => wait.push(p),
                        AccessType::Cow => cow.push(p),
                        AccessType::Avoided => avoided.push(p),
                        AccessType::After => rest.push(p),
                        AccessType::Untouched => unreachable!("tombstones filtered above"),
                    }
                }
                // `dirty` is already in access order, i.e. ascending
                // LastIndex, so the three history buckets are pre-sorted
                // exactly as Algorithm 4 requires ("preference is given to
                // the page that was accessed the earliest"). The rest bucket
                // has no history signal; use ascending address for
                // determinism (what the baseline would do).
                rest.sort_unstable();
                vec![wait, cow, avoided, rest]
            }
            SchedulerKind::AddressOrder => {
                let mut q: Vec<PageId> = dirty.to_vec();
                q.sort_unstable();
                vec![q]
            }
            SchedulerKind::AccessOrder => {
                // `dirty` is already ascending in LastIndex.
                vec![dirty.to_vec()]
            }
            SchedulerKind::ReverseAddress => {
                let mut q: Vec<PageId> = dirty.to_vec();
                q.sort_unstable_by(|a, b| b.cmp(a));
                vec![q]
            }
            SchedulerKind::Random(seed) => {
                let mut q: Vec<PageId> = dirty.to_vec();
                q.sort_unstable();
                SplitMix64::new(seed).shuffle(&mut q);
                vec![q]
            }
        };
        let total = queues.iter().map(Vec::len).sum();
        Self {
            queues,
            queue_idx: 0,
            pos: 0,
            total,
            left: total,
        }
    }

    /// An empty plan (first checkpoint before anything is dirty).
    pub fn empty() -> Self {
        Self {
            queues: Vec::new(),
            queue_idx: 0,
            pos: 0,
            total: 0,
            left: 0,
        }
    }

    /// Total number of pages the plan was built with.
    #[inline]
    pub fn planned(&self) -> usize {
        self.total
    }

    /// Pop the next candidate in static priority order, skipping pages for
    /// which `still_pending` returns false (they were already handled through
    /// a dynamic path: `WaitedPage` hint or current-epoch CoW preference).
    pub fn next(&mut self, mut still_pending: impl FnMut(PageId) -> bool) -> Option<PageId> {
        while self.queue_idx < self.queues.len() {
            let q = &self.queues[self.queue_idx];
            while self.pos < q.len() {
                let p = q[self.pos];
                self.pos += 1;
                self.left -= 1;
                if still_pending(p) {
                    return Some(p);
                }
            }
            self.queue_idx += 1;
            self.pos = 0;
        }
        None
    }

    /// Pop up to `n` candidates in static priority order into `out`,
    /// skipping pages for which `still_pending` returns false.
    ///
    /// This is the multi-stream committer's claim primitive: a worker takes
    /// a whole *run* of pages under one engine-lock acquisition instead of
    /// re-locking per page, while the run still follows the plan's
    /// CoW-first/Waited-page-aware priority order — so splitting the drain
    /// across `N` streams preserves the paper's flush ordering between the
    /// batch boundaries.
    pub fn next_batch(
        &mut self,
        n: usize,
        mut still_pending: impl FnMut(PageId) -> bool,
        out: &mut Vec<PageId>,
    ) -> usize {
        let mut taken = 0;
        while taken < n {
            match self.next(&mut still_pending) {
                Some(p) => {
                    out.push(p);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Remaining candidates (including ones that may be skipped later).
    /// O(1): maintained as a counter decremented by every pop in
    /// [`FlushPlan::next`].
    #[inline]
    pub fn remaining(&self) -> usize {
        self.left
    }

    /// Which bucket a page would fall into under the adaptive policy; test
    /// and introspection helper.
    pub fn bucket_of(last: &EpochRecord, p: PageId) -> Bucket {
        match last.access_type(p) {
            AccessType::Wait => Bucket::LastWait,
            AccessType::Cow => Bucket::LastCow,
            AccessType::Avoided => Bucket::LastAvoided,
            _ => Bucket::Rest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::EpochRecord;

    /// Record helper: mark pages in the given order with given types.
    fn record_seq(pages: usize, seq: &[(PageId, AccessType)]) -> EpochRecord {
        let mut r = EpochRecord::new(pages);
        for &(p, ty) in seq {
            assert!(r.record(p, ty));
        }
        r
    }

    #[test]
    fn adaptive_orders_wait_cow_avoided_rest() {
        // Access order: 5(AVOIDED), 1(COW), 9(WAIT), 3(AFTER), 7(WAIT)
        let r = record_seq(
            12,
            &[
                (5, AccessType::Avoided),
                (1, AccessType::Cow),
                (9, AccessType::Wait),
                (3, AccessType::After),
                (7, AccessType::Wait),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::Adaptive, &r);
        let order: Vec<PageId> = std::iter::from_fn(|| plan.next(|_| true)).collect();
        // WAITs by access order (9 before 7), then COW, then AVOIDED, then AFTER.
        assert_eq!(order, vec![9, 7, 1, 5, 3]);
    }

    #[test]
    fn adaptive_ties_break_by_earliest_access() {
        let r = record_seq(
            8,
            &[
                (6, AccessType::Wait),
                (2, AccessType::Wait),
                (4, AccessType::Wait),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::Adaptive, &r);
        let order: Vec<PageId> = std::iter::from_fn(|| plan.next(|_| true)).collect();
        assert_eq!(order, vec![6, 2, 4], "earliest-accessed first, not by id");
    }

    #[test]
    fn address_order_ignores_history() {
        let r = record_seq(
            8,
            &[
                (6, AccessType::Wait),
                (2, AccessType::After),
                (4, AccessType::Cow),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::AddressOrder, &r);
        let order: Vec<PageId> = std::iter::from_fn(|| plan.next(|_| true)).collect();
        assert_eq!(order, vec![2, 4, 6]);
    }

    #[test]
    fn reverse_address_is_descending() {
        let r = record_seq(
            8,
            &[
                (6, AccessType::After),
                (2, AccessType::After),
                (4, AccessType::After),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::ReverseAddress, &r);
        let order: Vec<PageId> = std::iter::from_fn(|| plan.next(|_| true)).collect();
        assert_eq!(order, vec![6, 4, 2]);
    }

    #[test]
    fn access_order_follows_last_epoch_timeline() {
        let r = record_seq(
            8,
            &[
                (6, AccessType::After),
                (2, AccessType::Wait),
                (4, AccessType::Cow),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::AccessOrder, &r);
        let order: Vec<PageId> = std::iter::from_fn(|| plan.next(|_| true)).collect();
        assert_eq!(order, vec![6, 2, 4]);
    }

    #[test]
    fn random_is_a_permutation_and_seed_stable() {
        let r = record_seq(
            32,
            &(0..32)
                .map(|p| (p as PageId, AccessType::After))
                .collect::<Vec<_>>(),
        );
        let take = |mut plan: FlushPlan| {
            std::iter::from_fn(move || plan.next(|_| true)).collect::<Vec<_>>()
        };
        let a = take(FlushPlan::build(SchedulerKind::Random(42), &r));
        let b = take(FlushPlan::build(SchedulerKind::Random(42), &r));
        let c = take(FlushPlan::build(SchedulerKind::Random(43), &r));
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, c, "different seed, different order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "still a permutation");
    }

    #[test]
    fn next_skips_non_pending_pages() {
        let r = record_seq(
            8,
            &[
                (1, AccessType::Wait),
                (2, AccessType::Wait),
                (3, AccessType::Wait),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::Adaptive, &r);
        assert_eq!(plan.next(|p| p != 1), Some(2), "page 1 already handled");
        assert_eq!(plan.next(|_| true), Some(3));
        assert_eq!(plan.next(|_| true), None);
    }

    #[test]
    fn remaining_counts_down() {
        let r = record_seq(8, &[(1, AccessType::After), (2, AccessType::After)]);
        let mut plan = FlushPlan::build(SchedulerKind::AddressOrder, &r);
        assert_eq!(plan.planned(), 2);
        assert_eq!(plan.remaining(), 2);
        plan.next(|_| true);
        assert_eq!(plan.remaining(), 1);
        plan.next(|_| true);
        assert_eq!(plan.remaining(), 0);
        assert!(plan.next(|_| true).is_none());
    }

    #[test]
    fn remaining_counts_skipped_pops_too() {
        // remaining() counts entries not yet popped, whether the pop yields
        // or skips — the documented pre-O(1) semantics, preserved.
        let r = record_seq(
            8,
            &[
                (1, AccessType::Wait),
                (2, AccessType::Wait),
                (3, AccessType::Wait),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::Adaptive, &r);
        assert_eq!(plan.remaining(), 3);
        // Page 1 is skipped AND page 2 yielded: two entries popped.
        assert_eq!(plan.next(|p| p != 1), Some(2));
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.next(|_| true), Some(3));
        assert_eq!(plan.remaining(), 0);
        assert!(plan.next(|_| true).is_none());
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn next_batch_claims_runs_in_priority_order() {
        let r = record_seq(
            12,
            &[
                (5, AccessType::Avoided),
                (1, AccessType::Cow),
                (9, AccessType::Wait),
                (3, AccessType::After),
                (7, AccessType::Wait),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::Adaptive, &r);
        let mut a = Vec::new();
        assert_eq!(plan.next_batch(3, |_| true, &mut a), 3);
        assert_eq!(a, vec![9, 7, 1], "first run follows priority order");
        let mut b = Vec::new();
        assert_eq!(plan.next_batch(8, |_| true, &mut b), 2, "short final run");
        assert_eq!(b, vec![5, 3]);
        assert_eq!(plan.next_batch(1, |_| true, &mut b), 0, "drained");
    }

    #[test]
    fn next_batch_skips_non_pending() {
        let r = record_seq(
            8,
            &[
                (1, AccessType::Wait),
                (2, AccessType::Wait),
                (3, AccessType::Wait),
            ],
        );
        let mut plan = FlushPlan::build(SchedulerKind::Adaptive, &r);
        let mut out = Vec::new();
        assert_eq!(plan.next_batch(3, |p| p != 2, &mut out), 2);
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn tombstones_are_filtered_at_build_time() {
        // A freed page leaves a dirty-list tombstone (AT back to UNTOUCHED).
        // Every scheduler must exclude it from its queues, keeping
        // planned()/remaining() equal to the true scheduled count.
        for kind in [
            SchedulerKind::Adaptive,
            SchedulerKind::AddressOrder,
            SchedulerKind::AccessOrder,
            SchedulerKind::ReverseAddress,
            SchedulerKind::Random(3),
        ] {
            let mut r = record_seq(
                8,
                &[
                    (1, AccessType::Wait),
                    (4, AccessType::After),
                    (6, AccessType::Cow),
                ],
            );
            r.unrecord(4);
            let mut plan = FlushPlan::build(kind, &r);
            assert_eq!(plan.planned(), 2, "{kind:?}");
            assert_eq!(plan.remaining(), 2, "{kind:?}");
            let mut order: Vec<PageId> = std::iter::from_fn(|| plan.next(|_| true)).collect();
            order.sort_unstable();
            assert_eq!(order, vec![1, 6], "{kind:?}: tombstone never surfaced");
        }
    }

    #[test]
    fn empty_plan_yields_nothing() {
        let mut plan = FlushPlan::empty();
        assert_eq!(plan.planned(), 0);
        assert!(plan.next(|_| true).is_none());
    }
}
