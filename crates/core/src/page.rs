//! Fundamental page-level types: identifiers, per-epoch access types and the
//! page state machine shared by the committer and the write-fault handler.
//!
//! The vocabulary follows §3.3 of the paper verbatim: a page is
//! `PAGE_PROCESSED`, `PAGE_SCHEDULED` or `PAGE_INPROGRESS`, and the access it
//! triggered during an epoch is `UNTOUCHED`, `COW`, `WAIT`, `AVOIDED` or
//! `AFTER`. We add one extra state, [`PageState::Cowed`], to represent a
//! scheduled page whose pre-checkpoint content has been preserved in a
//! copy-on-write slot (the paper encodes this implicitly through
//! `AT[p] = COW`; a dedicated state makes the committer/handler hand-off
//! explicit and race-free).

use std::sync::atomic::{AtomicU8, Ordering};

/// Index of a page within the managed page set.
///
/// `u32` supports 16 TiB of protected memory at 4 KiB pages, far beyond the
/// per-process footprints in the paper (≤ 1 GiB per rank).
pub type PageId = u32;

/// Sentinel for "no copy-on-write slot assigned".
pub const NO_SLOT: u32 = u32::MAX;

/// The kind of interference a first write to a page caused during an epoch
/// (§3.1 "Leverage access pattern history to optimize flushing").
///
/// Recorded once per page per epoch, at the page's *first* write (subsequent
/// writes do not fault because write protection is lifted after the first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AccessType {
    /// The page has not been written since the last checkpoint request.
    Untouched = 0,
    /// The first write triggered a copy-on-write: the pre-checkpoint content
    /// was preserved in a slot and the write proceeded on the original page.
    Cow = 1,
    /// The application had to wait for the page to be committed first
    /// (either it was being flushed, or no copy-on-write slots were free).
    Wait = 2,
    /// The page was written while the checkpoint was still in progress, but
    /// it had already been committed, so no wait or copy was necessary.
    Avoided = 3,
    /// The page was written after the checkpoint had completed.
    After = 4,
}

impl AccessType {
    /// Decode from the byte representation used in the packed per-page table.
    #[inline]
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => AccessType::Untouched,
            1 => AccessType::Cow,
            2 => AccessType::Wait,
            3 => AccessType::Avoided,
            4 => AccessType::After,
            _ => unreachable!("invalid AccessType byte {v}"),
        }
    }

    /// All variants, in discriminant order. Useful for stats tables.
    pub const ALL: [AccessType; 5] = [
        AccessType::Untouched,
        AccessType::Cow,
        AccessType::Wait,
        AccessType::Avoided,
        AccessType::After,
    ];

    /// Short label used by reports and the figure harness.
    pub fn label(self) -> &'static str {
        match self {
            AccessType::Untouched => "UNTOUCHED",
            AccessType::Cow => "COW",
            AccessType::Wait => "WAIT",
            AccessType::Avoided => "AVOIDED",
            AccessType::After => "AFTER",
        }
    }
}

/// Commit status of a page with respect to the checkpoint currently being
/// flushed (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageState {
    /// Already handled by the checkpointing process: either committed, or it
    /// was not part of the checkpoint at all. Writes may proceed freely
    /// (after being recorded).
    Processed = 0,
    /// Dirty at the last checkpoint request; must be committed, not yet
    /// started. A write to such a page either takes a CoW slot or waits.
    Scheduled = 1,
    /// Locked by the committer; being written to storage right now. A write
    /// must wait for [`PageState::Processed`].
    InProgress = 2,
    /// Scheduled, but its pre-checkpoint content has been captured in a CoW
    /// slot; the application may write the original page. The committer
    /// still owes a flush of the slot content.
    Cowed = 3,
}

impl PageState {
    /// Decode from the byte representation used in [`StateTable`].
    #[inline]
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => PageState::Processed,
            1 => PageState::Scheduled,
            2 => PageState::InProgress,
            3 => PageState::Cowed,
            _ => unreachable!("invalid PageState byte {v}"),
        }
    }
}

/// Where the committer must read the bytes of a selected page from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushSource {
    /// Read the live page content from application memory. Safe because the
    /// page is `InProgress`: any concurrent writer is blocked in the fault
    /// handler until the flush completes.
    Memory,
    /// Read from the given copy-on-write slot; the application may already
    /// have overwritten the live page.
    CowSlot(u32),
}

/// A page picked by the scheduler, ready to be committed to storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushItem {
    /// Which page to commit.
    pub page: PageId,
    /// Where its epoch-consistent bytes live.
    pub source: FlushSource,
}

/// Shared, atomically readable view of every page's [`PageState`].
///
/// The table is written only under the engine lock, but it is *read* without
/// any lock by threads blocked inside the SIGSEGV handler (spinning until
/// their page becomes [`PageState::Processed`]). Using atomics makes that
/// lock-free read well-defined; `Release` stores pair with `Acquire` loads so
/// a waiter that observes `Processed` also observes the committed data.
#[derive(Debug)]
pub struct StateTable {
    states: Box<[AtomicU8]>,
}

impl StateTable {
    /// Create a table of `pages` entries, all [`PageState::Processed`].
    pub fn new(pages: usize) -> Self {
        let mut v = Vec::with_capacity(pages);
        v.resize_with(pages, || AtomicU8::new(PageState::Processed as u8));
        Self {
            states: v.into_boxed_slice(),
        }
    }

    /// Number of pages tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the table tracks no pages.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current state of page `p` (acquire load; safe from the fault handler).
    #[inline]
    pub fn get(&self, p: PageId) -> PageState {
        PageState::from_u8(self.states[p as usize].load(Ordering::Acquire))
    }

    /// Store a new state for page `p` (release store).
    #[inline]
    pub fn set(&self, p: PageId, s: PageState) {
        self.states[p as usize].store(s as u8, Ordering::Release);
    }

    /// True once the committer has fully handled page `p` for the current
    /// checkpoint. This is the condition waited on by blocked writers.
    #[inline]
    pub fn is_processed(&self, p: PageId) -> bool {
        self.get(p) == PageState::Processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_type_round_trips_through_u8() {
        for at in AccessType::ALL {
            assert_eq!(AccessType::from_u8(at as u8), at);
        }
    }

    #[test]
    fn access_type_labels_are_paper_vocabulary() {
        assert_eq!(AccessType::Cow.label(), "COW");
        assert_eq!(AccessType::Wait.label(), "WAIT");
        assert_eq!(AccessType::Avoided.label(), "AVOIDED");
        assert_eq!(AccessType::After.label(), "AFTER");
        assert_eq!(AccessType::Untouched.label(), "UNTOUCHED");
    }

    #[test]
    fn page_state_round_trips_through_u8() {
        for s in [
            PageState::Processed,
            PageState::Scheduled,
            PageState::InProgress,
            PageState::Cowed,
        ] {
            assert_eq!(PageState::from_u8(s as u8), s);
        }
    }

    #[test]
    fn state_table_starts_processed_and_updates() {
        let t = StateTable::new(8);
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
        for p in 0..8 {
            assert_eq!(t.get(p), PageState::Processed);
            assert!(t.is_processed(p));
        }
        t.set(3, PageState::Scheduled);
        assert_eq!(t.get(3), PageState::Scheduled);
        assert!(!t.is_processed(3));
        t.set(3, PageState::InProgress);
        assert_eq!(t.get(3), PageState::InProgress);
        t.set(3, PageState::Processed);
        assert!(t.is_processed(3));
    }

    #[test]
    fn empty_state_table() {
        let t = StateTable::new(0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
