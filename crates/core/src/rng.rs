//! Tiny deterministic RNG (SplitMix64) so the core crate stays
//! dependency-free while still supporting seeded shuffles (random-order
//! ablation scheduler, test inputs).
//!
//! SplitMix64 is the standard seeding generator from Steele et al.,
//! "Fast splittable pseudorandom number generators" (OOPSLA '14); it passes
//! BigCrush on its own and is more than adequate for shuffling.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (bias negligible for the bounds used here; determinism is what
    /// matters).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(123);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "shuffle changed order");
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the SplitMix64 reference
        // implementation, pinning the algorithm against regressions.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }
}
