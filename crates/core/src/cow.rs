//! Bounded copy-on-write slab (§3.1 "Use bounded copy-on-write to avoid wait
//! delays").
//!
//! The paper inverts classical copy-on-write: the *checkpointer* receives a
//! private copy of the pre-checkpoint page content while the application's
//! write proceeds on the original page, so the application's address space is
//! never disturbed. The number of slots is fixed before the run
//! (`Threshold` in Algorithm 2); when the slab is exhausted, writers must
//! wait instead.
//!
//! All storage is allocated at construction; `acquire`/`release` never
//! allocate, which makes them callable (under the engine spinlock) from a
//! SIGSEGV handler.
//!
//! ## The slot-ownership rule
//!
//! Slot *accounting* (the free list, the peak counter) lives in [`CowSlab`]
//! and is only ever touched under the engine lock. Slot *bytes* live in a
//! shared [`CowSlotStore`] behind an `Arc`, so a committer stream can read a
//! claimed slot **without holding the engine lock**. That is sound because a
//! slot is, at every instant, in exactly one of three phases:
//!
//! 1. **Free** — on the free list; nobody reads or writes its bytes.
//! 2. **Filling** — just acquired by the fault handler, which copies the
//!    page's pre-write content into it *while still holding the engine
//!    lock*. No other thread can learn the slot index before the lock is
//!    released.
//! 3. **Stable** — the copy is complete; the bytes never change again until
//!    the slot is released. The one committer stream that claims the owning
//!    page (under the engine lock) is the only reader, and only that
//!    stream's `complete_flush`/`complete_published` (under the engine lock
//!    again) returns the slot to the free list.
//!
//! The lock hand-offs between phases give the reader the necessary
//! happens-before edge: the handler's copy (phase 2) is ordered before the
//! stream's claim (engine-lock release/acquire), and the stream reads after
//! its claim, so lock-free reads observe fully written bytes.
//!
//! Phase 3's write-stability is what makes **zero-copy vectored I/O**
//! sound: the committer stream hands the storage backend a slice borrowed
//! straight from the slot (`CowSlotStore::slot`), and the backend's
//! `pwritev` iovecs point at those very bytes while the syscall runs. The
//! borrow must end before the stream's `complete_*` call releases the slot
//! — i.e. every iovec built over slot memory must be consumed (the write
//! syscall returned) before the page is reported complete. Backends must
//! not stash such slices past `write_pages`' return.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::page::NO_SLOT;

/// Shared byte storage of the CoW slab: `capacity * slot_bytes` bytes,
/// readable and writable through raw slot accessors **without the engine
/// lock**, under the slot-ownership rule (see the module docs).
///
/// The store is `Sync` even though accessors hand out plain slices, because
/// the ownership rule guarantees that at most one thread touches any given
/// slot's bytes at a time, and concurrent accesses to *different* slots are
/// disjoint ranges.
#[derive(Debug)]
pub struct CowSlotStore {
    slot_bytes: usize,
    capacity: u32,
    /// Backing bytes; empty when built with `store_data = false` (slot
    /// accounting only — the simulator's mode). `UnsafeCell` elements make
    /// interior mutation through a shared reference well-defined.
    data: Box<[UnsafeCell<u8>]>,
}

// SAFETY: all byte access goes through `slot`/`slot_mut`, whose contracts
// require the caller to hold exclusive ownership of the addressed slot (the
// slot-ownership rule above); distinct slots are disjoint ranges.
unsafe impl Send for CowSlotStore {}
unsafe impl Sync for CowSlotStore {}

impl CowSlotStore {
    fn new(capacity: u32, slot_bytes: usize, store_data: bool) -> Self {
        let len = if store_data {
            capacity as usize * slot_bytes
        } else {
            0
        };
        let data: Box<[UnsafeCell<u8>]> = (0..len).map(|_| UnsafeCell::new(0)).collect();
        Self {
            slot_bytes,
            capacity,
            data,
        }
    }

    /// Size of one slot in bytes.
    #[inline]
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    /// Whether this store holds bytes (vs. accounting only).
    #[inline]
    pub fn stores_data(&self) -> bool {
        !self.data.is_empty() || self.capacity == 0 || self.slot_bytes == 0
    }

    /// Byte offset of `slot`, bounds-checked against the backing storage.
    #[inline]
    fn offset(&self, slot: u32) -> usize {
        let start = slot as usize * self.slot_bytes;
        assert!(
            start + self.slot_bytes <= self.data.len(),
            "CoW slot {slot} out of range (capacity {}, data-less: {})",
            self.capacity,
            self.data.is_empty(),
        );
        start
    }

    /// Read a slot's bytes without any lock.
    ///
    /// # Safety
    /// The caller must own the slot per the slot-ownership rule: the slot is
    /// claimed by the calling committer stream (its page was selected and
    /// not yet completed), so no other thread writes or releases it for the
    /// lifetime of the returned slice.
    #[inline]
    pub unsafe fn slot(&self, slot: u32) -> &[u8] {
        let start = self.offset(slot);
        // SAFETY: in-bounds (checked above); the cast follows
        // `UnsafeCell::raw_get` semantics (`*const UnsafeCell<u8>` and
        // `*mut u8` are interconvertible); disjoint from every other slot;
        // exclusivity for THIS slot is the caller's contract.
        unsafe {
            std::slice::from_raw_parts(self.data.as_ptr().add(start) as *const u8, self.slot_bytes)
        }
    }

    /// Write a slot's bytes without any lock.
    ///
    /// # Safety
    /// The caller must own the slot per the slot-ownership rule: the slot
    /// was just acquired and its index has not been published to any other
    /// thread (the fault handler's "filling" phase, under the engine lock).
    #[inline]
    #[allow(clippy::mut_from_ref)] // interior mutability; exclusivity is the caller's contract
    pub unsafe fn slot_mut(&self, slot: u32) -> &mut [u8] {
        let start = self.offset(slot);
        // SAFETY: as `slot`, with exclusive access guaranteed by contract.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.data.as_ptr().add(start) as *mut u8,
                self.slot_bytes,
            )
        }
    }
}

/// Fixed-capacity pool of page-sized copy slots: the accounting half of the
/// slab (engine-lock domain) over a shared [`CowSlotStore`] (lock-free
/// domain).
#[derive(Debug)]
pub struct CowSlab {
    store: Arc<CowSlotStore>,
    /// LIFO free list of slot indices. Pre-sized to capacity; push/pop never
    /// reallocate.
    free: Vec<u32>,
    capacity: u32,
    /// High-water mark of simultaneously used slots (reported per epoch).
    peak_in_use: u32,
}

impl CowSlab {
    /// Create a slab with `capacity` slots of `slot_bytes` each.
    ///
    /// When `store_data` is false the slab tracks slot usage but holds no
    /// bytes (the simulator's mode); calling [`CowSlab::slot`] or
    /// [`CowSlab::slot_mut`] then panics.
    pub fn new(capacity: u32, slot_bytes: usize, store_data: bool) -> Self {
        // LIFO order: hand out low indices first so tests are deterministic.
        let free: Vec<u32> = (0..capacity).rev().collect();
        Self {
            store: Arc::new(CowSlotStore::new(capacity, slot_bytes, store_data)),
            free,
            capacity,
            peak_in_use: 0,
        }
    }

    /// The shared byte store. Committer streams clone this `Arc` to read
    /// claimed slots without the engine lock (slot-ownership rule).
    #[inline]
    pub fn store(&self) -> &Arc<CowSlotStore> {
        &self.store
    }

    /// Total number of slots.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of slots currently holding a pending copy.
    #[inline]
    pub fn in_use(&self) -> u32 {
        self.capacity - self.free.len() as u32
    }

    /// Largest number of slots that were in use at the same time since the
    /// last [`CowSlab::reset_peak`].
    #[inline]
    pub fn peak_in_use(&self) -> u32 {
        self.peak_in_use
    }

    /// Reset the high-water mark (called at each checkpoint request).
    pub fn reset_peak(&mut self) {
        self.peak_in_use = self.in_use();
    }

    /// True when no slot is free (`|CowPage| >= Threshold` in Algorithm 2).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Take a free slot, if any. Never allocates.
    #[inline]
    pub fn acquire(&mut self) -> Option<u32> {
        let slot = self.free.pop()?;
        self.peak_in_use = self.peak_in_use.max(self.in_use());
        Some(slot)
    }

    /// Return a slot to the pool. Never allocates (capacity was pre-sized).
    ///
    /// # Panics
    /// In debug builds, panics if the slot is out of range or already free.
    #[inline]
    pub fn release(&mut self, slot: u32) {
        debug_assert!(slot != NO_SLOT && slot < self.capacity, "bad slot {slot}");
        debug_assert!(
            !self.free.contains(&slot),
            "double release of CoW slot {slot}"
        );
        self.free.push(slot);
    }

    /// Read access to a slot's bytes.
    #[inline]
    pub fn slot(&self, slot: u32) -> &[u8] {
        // SAFETY: `&self` is only reachable under the engine lock, which
        // also guards every acquire/fill/release transition — no concurrent
        // writer can exist for the borrow's lifetime.
        unsafe { self.store.slot(slot) }
    }

    /// Write access to a slot's bytes (the fault handler copies the page's
    /// pre-write content here).
    #[inline]
    pub fn slot_mut(&mut self, slot: u32) -> &mut [u8] {
        // SAFETY: `&mut self` is only reachable under the engine lock; a
        // lock-free committer reader can only address slots whose pages it
        // claimed, and claimed slots are never handed to `slot_mut` (they
        // left `acquire` long ago and are in their stable phase).
        unsafe { self.store.slot_mut(slot) }
    }

    /// Whether this slab stores bytes (vs. accounting only).
    #[inline]
    pub fn stores_data(&self) -> bool {
        self.store.stores_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_full_then_release() {
        let mut slab = CowSlab::new(3, 8, true);
        assert_eq!(slab.capacity(), 3);
        assert!(!slab.is_full());
        let a = slab.acquire().unwrap();
        let b = slab.acquire().unwrap();
        let c = slab.acquire().unwrap();
        assert_eq!((a, b, c), (0, 1, 2), "slots handed out low-first");
        assert!(slab.is_full());
        assert!(slab.acquire().is_none());
        assert_eq!(slab.in_use(), 3);
        slab.release(b);
        assert_eq!(slab.in_use(), 2);
        assert_eq!(slab.acquire(), Some(1), "released slot is reused");
    }

    #[test]
    fn peak_tracking() {
        let mut slab = CowSlab::new(4, 1, false);
        let s0 = slab.acquire().unwrap();
        let _s1 = slab.acquire().unwrap();
        assert_eq!(slab.peak_in_use(), 2);
        slab.release(s0);
        assert_eq!(slab.peak_in_use(), 2, "peak survives releases");
        slab.reset_peak();
        assert_eq!(slab.peak_in_use(), 1, "reset re-bases on current usage");
    }

    #[test]
    fn slot_data_is_isolated_per_slot() {
        let mut slab = CowSlab::new(2, 4, true);
        let a = slab.acquire().unwrap();
        let b = slab.acquire().unwrap();
        slab.slot_mut(a).copy_from_slice(&[1, 2, 3, 4]);
        slab.slot_mut(b).copy_from_slice(&[9, 9, 9, 9]);
        assert_eq!(slab.slot(a), &[1, 2, 3, 4]);
        assert_eq!(slab.slot(b), &[9, 9, 9, 9]);
    }

    #[test]
    fn shared_store_reads_do_not_need_the_slab() {
        // The committer-side pattern: fill a slot through the slab (engine
        // lock domain), read it back through the shared store only.
        let mut slab = CowSlab::new(2, 4, true);
        let store = Arc::clone(slab.store());
        let a = slab.acquire().unwrap();
        slab.slot_mut(a).copy_from_slice(&[5, 6, 7, 8]);
        // SAFETY: slot `a` is owned by this test until released.
        assert_eq!(unsafe { store.slot(a) }, &[5, 6, 7, 8]);
        let read = std::thread::scope(|s| {
            let store = &store;
            s.spawn(move || {
                // SAFETY: as above; the owning "stream" moved here.
                unsafe { store.slot(a).to_vec() }
            })
            .join()
            .unwrap()
        });
        assert_eq!(read, vec![5, 6, 7, 8]);
        slab.release(a);
    }

    #[test]
    fn zero_capacity_slab_never_grants() {
        let mut slab = CowSlab::new(0, 4096, true);
        assert!(slab.is_full());
        assert!(slab.acquire().is_none());
        assert_eq!(slab.in_use(), 0);
        assert!(slab.stores_data());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn data_less_store_panics_on_byte_access() {
        let mut slab = CowSlab::new(2, 4, false);
        let a = slab.acquire().unwrap();
        let _ = slab.slot(a);
    }

    #[test]
    #[should_panic(expected = "double release")]
    #[cfg(debug_assertions)]
    fn double_release_is_caught_in_debug() {
        let mut slab = CowSlab::new(2, 1, false);
        let a = slab.acquire().unwrap();
        slab.release(a);
        slab.release(a);
    }

    #[test]
    fn release_does_not_grow_past_capacity() {
        let mut slab = CowSlab::new(8, 1, false);
        let cap_before = slab.free.capacity();
        let mut held: Vec<u32> = (0..8).map(|_| slab.acquire().unwrap()).collect();
        for s in held.drain(..) {
            slab.release(s);
        }
        assert_eq!(slab.free.capacity(), cap_before, "no reallocation");
        assert_eq!(slab.in_use(), 0);
    }
}
