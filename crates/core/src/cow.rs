//! Bounded copy-on-write slab (§3.1 "Use bounded copy-on-write to avoid wait
//! delays").
//!
//! The paper inverts classical copy-on-write: the *checkpointer* receives a
//! private copy of the pre-checkpoint page content while the application's
//! write proceeds on the original page, so the application's address space is
//! never disturbed. The number of slots is fixed before the run
//! (`Threshold` in Algorithm 2); when the slab is exhausted, writers must
//! wait instead.
//!
//! All storage is allocated at construction; `acquire`/`release` never
//! allocate, which makes them callable (under the engine spinlock) from a
//! SIGSEGV handler.

use crate::page::NO_SLOT;

/// Fixed-capacity pool of page-sized copy slots.
#[derive(Debug)]
pub struct CowSlab {
    slot_bytes: usize,
    /// Backing bytes, `capacity * slot_bytes` long; empty when the slab was
    /// built with `store_data = false` (slot accounting only).
    data: Box<[u8]>,
    /// LIFO free list of slot indices. Pre-sized to capacity; push/pop never
    /// reallocate.
    free: Vec<u32>,
    capacity: u32,
    /// High-water mark of simultaneously used slots (reported per epoch).
    peak_in_use: u32,
}

impl CowSlab {
    /// Create a slab with `capacity` slots of `slot_bytes` each.
    ///
    /// When `store_data` is false the slab tracks slot usage but holds no
    /// bytes (the simulator's mode); calling [`CowSlab::slot`] or
    /// [`CowSlab::slot_mut`] then panics.
    pub fn new(capacity: u32, slot_bytes: usize, store_data: bool) -> Self {
        let data = if store_data {
            vec![0u8; capacity as usize * slot_bytes].into_boxed_slice()
        } else {
            Box::default()
        };
        // LIFO order: hand out low indices first so tests are deterministic.
        let free: Vec<u32> = (0..capacity).rev().collect();
        Self {
            slot_bytes,
            data,
            free,
            capacity,
            peak_in_use: 0,
        }
    }

    /// Total number of slots.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of slots currently holding a pending copy.
    #[inline]
    pub fn in_use(&self) -> u32 {
        self.capacity - self.free.len() as u32
    }

    /// Largest number of slots that were in use at the same time since the
    /// last [`CowSlab::reset_peak`].
    #[inline]
    pub fn peak_in_use(&self) -> u32 {
        self.peak_in_use
    }

    /// Reset the high-water mark (called at each checkpoint request).
    pub fn reset_peak(&mut self) {
        self.peak_in_use = self.in_use();
    }

    /// True when no slot is free (`|CowPage| >= Threshold` in Algorithm 2).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Take a free slot, if any. Never allocates.
    #[inline]
    pub fn acquire(&mut self) -> Option<u32> {
        let slot = self.free.pop()?;
        self.peak_in_use = self.peak_in_use.max(self.in_use());
        Some(slot)
    }

    /// Return a slot to the pool. Never allocates (capacity was pre-sized).
    ///
    /// # Panics
    /// In debug builds, panics if the slot is out of range or already free.
    #[inline]
    pub fn release(&mut self, slot: u32) {
        debug_assert!(slot != NO_SLOT && slot < self.capacity, "bad slot {slot}");
        debug_assert!(
            !self.free.contains(&slot),
            "double release of CoW slot {slot}"
        );
        self.free.push(slot);
    }

    /// Read access to a slot's bytes.
    #[inline]
    pub fn slot(&self, slot: u32) -> &[u8] {
        let s = slot as usize * self.slot_bytes;
        &self.data[s..s + self.slot_bytes]
    }

    /// Write access to a slot's bytes (the fault handler copies the page's
    /// pre-write content here).
    #[inline]
    pub fn slot_mut(&mut self, slot: u32) -> &mut [u8] {
        let s = slot as usize * self.slot_bytes;
        &mut self.data[s..s + self.slot_bytes]
    }

    /// Whether this slab stores bytes (vs. accounting only).
    #[inline]
    pub fn stores_data(&self) -> bool {
        !self.data.is_empty() || self.capacity == 0 || self.slot_bytes == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_full_then_release() {
        let mut slab = CowSlab::new(3, 8, true);
        assert_eq!(slab.capacity(), 3);
        assert!(!slab.is_full());
        let a = slab.acquire().unwrap();
        let b = slab.acquire().unwrap();
        let c = slab.acquire().unwrap();
        assert_eq!((a, b, c), (0, 1, 2), "slots handed out low-first");
        assert!(slab.is_full());
        assert!(slab.acquire().is_none());
        assert_eq!(slab.in_use(), 3);
        slab.release(b);
        assert_eq!(slab.in_use(), 2);
        assert_eq!(slab.acquire(), Some(1), "released slot is reused");
    }

    #[test]
    fn peak_tracking() {
        let mut slab = CowSlab::new(4, 1, false);
        let s0 = slab.acquire().unwrap();
        let _s1 = slab.acquire().unwrap();
        assert_eq!(slab.peak_in_use(), 2);
        slab.release(s0);
        assert_eq!(slab.peak_in_use(), 2, "peak survives releases");
        slab.reset_peak();
        assert_eq!(slab.peak_in_use(), 1, "reset re-bases on current usage");
    }

    #[test]
    fn slot_data_is_isolated_per_slot() {
        let mut slab = CowSlab::new(2, 4, true);
        let a = slab.acquire().unwrap();
        let b = slab.acquire().unwrap();
        slab.slot_mut(a).copy_from_slice(&[1, 2, 3, 4]);
        slab.slot_mut(b).copy_from_slice(&[9, 9, 9, 9]);
        assert_eq!(slab.slot(a), &[1, 2, 3, 4]);
        assert_eq!(slab.slot(b), &[9, 9, 9, 9]);
    }

    #[test]
    fn zero_capacity_slab_never_grants() {
        let mut slab = CowSlab::new(0, 4096, true);
        assert!(slab.is_full());
        assert!(slab.acquire().is_none());
        assert_eq!(slab.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    #[cfg(debug_assertions)]
    fn double_release_is_caught_in_debug() {
        let mut slab = CowSlab::new(2, 1, false);
        let a = slab.acquire().unwrap();
        slab.release(a);
        slab.release(a);
    }

    #[test]
    fn release_does_not_grow_past_capacity() {
        let mut slab = CowSlab::new(8, 1, false);
        let cap_before = slab.free.capacity();
        let mut held: Vec<u32> = (0..8).map(|_| slab.acquire().unwrap()).collect();
        for s in held.drain(..) {
            slab.release(s);
        }
        assert_eq!(slab.free.capacity(), cap_before, "no reallocation");
        assert_eq!(slab.in_use(), 0);
    }
}
