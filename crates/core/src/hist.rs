//! A lock-free log-scale latency histogram, safe to update from a SIGSEGV
//! handler.
//!
//! The runtime records every protected-write fault's entry-to-exit latency
//! here — the paper's headline "interference" quantity turned into a
//! measured distribution (p50/p99/max) instead of a mean. Recording is a
//! handful of relaxed atomic RMWs: no locks, no allocation, so the fault
//! handler may call [`LatencyHistogram::record`] directly.
//!
//! Buckets are powers of two of nanoseconds (bucket *b* holds samples whose
//! value needs *b* significant bits, i.e. `[2^(b-1), 2^b)`), which resolves
//! everything from a sub-microsecond proceed-immediately fault to a
//! multi-millisecond `MustWait` stall in 64 counters. Quantiles are
//! reported as the matched bucket's upper bound (clamped to the observed
//! maximum): a conservative ≤2× overestimate, plenty for ablation-level
//! comparisons.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (enough for any u64 nanosecond value).
const BUCKETS: usize = 64;

/// Concurrent histogram of nanosecond latencies. All methods are lock-free;
/// `record` is async-signal-safe.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample: its bit length (0 → bucket 0).
    #[inline]
    fn bucket_of(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper bound (inclusive) of a bucket's value range.
    #[inline]
    fn bucket_bound(bucket: usize) -> u64 {
        if bucket >= 63 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Record one sample. Lock-free, allocation-free, async-signal-safe.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Capture the current distribution. Concurrent `record`s make the
    /// snapshot approximate (counters are read one by one), which is fine
    /// for monitoring; quiesce writers for exact numbers.
    pub fn snapshot(&self) -> LatencySnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile sample, 1-based, at least 1.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_bound(i).min(max_ns);
                }
            }
            max_ns
        };
        LatencySnapshot {
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns,
            p50_ns: quantile(0.50),
            p99_ns: quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (for means over arbitrary windows).
    pub sum_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Median (bucket upper bound, clamped to `max_ns`).
    pub p50_ns: u64,
    /// 99th percentile (bucket upper bound, clamped to `max_ns`).
    pub p99_ns: u64,
}

impl LatencySnapshot {
    /// Mean sample value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot(), LatencySnapshot::default());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_pins_every_stat() {
        let h = LatencyHistogram::new();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_ns, 1000);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.mean_ns(), 1000);
        // 1000 needs 10 bits -> bucket 10, bound 1023, clamped to max 1000.
        assert_eq!(s.p50_ns, 1000);
        assert_eq!(s.p99_ns, 1000);
    }

    #[test]
    fn quantiles_split_a_bimodal_distribution() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, bound 127
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 127, "median in the fast mode");
        assert_eq!(s.p99_ns, 127, "p99 rank 99 still in the fast mode");
        assert_eq!(s.max_ns, 1_000_000);
        // With 2% slow samples the p99 moves to the slow mode.
        let h = LatencyHistogram::new();
        for _ in 0..98 {
            h.record(100);
        }
        h.record(1_000_000);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50_ns, 127);
        assert!(s.p99_ns >= 1_000_000 / 2, "p99 reached the slow mode");
    }

    #[test]
    fn zero_and_huge_samples_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, u64::MAX);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.p99_ns, u64::MAX);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(i * (t + 1));
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }
}
