//! Per-epoch access-type statistics and checkpoint reports — the metrics the
//! paper's evaluation plots (§4.2: "Access type statistics", checkpointing
//! time, impact on application performance).

use crate::page::AccessType;

/// Counters for one epoch: the access types recorded between two consecutive
/// checkpoint requests, plus flush-side metrics for the checkpoint that was
/// written during that epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Epoch number (0 = from engine creation to the first request).
    pub epoch: u64,
    /// Pages first-written during the epoch (size of `Dirty`).
    pub dirty_pages: u64,
    /// Pages whose first write triggered a copy-on-write.
    pub cow: u64,
    /// Pages whose first write had to wait for the page to be committed.
    pub wait: u64,
    /// Pages written while checkpointing was in progress but already
    /// committed (no wait, no copy).
    pub avoided: u64,
    /// Pages written after the checkpoint completed.
    pub after: u64,
    /// Pages committed to storage for the checkpoint flushed this epoch.
    pub flushed_pages: u64,
    /// ... of which served from copy-on-write slots.
    pub flushed_from_cow: u64,
    /// Bytes committed to storage.
    pub flushed_bytes: u64,
    /// High-water mark of simultaneously occupied CoW slots.
    pub peak_cow_slots: u32,
}

impl EpochStats {
    /// Record one access of the given type.
    #[inline]
    pub(crate) fn bump(&mut self, ty: AccessType) {
        self.dirty_pages += 1;
        match ty {
            AccessType::Cow => self.cow += 1,
            AccessType::Wait => self.wait += 1,
            AccessType::Avoided => self.avoided += 1,
            AccessType::After => self.after += 1,
            AccessType::Untouched => unreachable!("UNTOUCHED is never recorded"),
        }
    }

    /// Count for a given access type (reporting helper).
    pub fn count(&self, ty: AccessType) -> u64 {
        match ty {
            AccessType::Untouched => 0,
            AccessType::Cow => self.cow,
            AccessType::Wait => self.wait,
            AccessType::Avoided => self.avoided,
            AccessType::After => self.after,
        }
    }
}

/// Summary returned by `EpochEngine::begin_checkpoint`: what the new
/// checkpoint will flush, and the closed epoch's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPlanInfo {
    /// Checkpoint sequence number (1-based; checkpoint *n* persists the
    /// dirty set accumulated during epoch *n − 1*).
    pub checkpoint: u64,
    /// Pages scheduled for flushing.
    pub scheduled_pages: u64,
    /// Bytes scheduled for flushing.
    pub scheduled_bytes: u64,
    /// Statistics of the epoch that just closed.
    pub closed_epoch: EpochStats,
}

/// Running aggregate over all completed epochs; convenient for the figure
/// harness ("average for the three checkpoints is reported").
#[derive(Debug, Clone, Default)]
pub struct StatsAggregate {
    epochs: Vec<EpochStats>,
}

impl StatsAggregate {
    /// Add one epoch's stats.
    pub fn push(&mut self, s: EpochStats) {
        self.epochs.push(s);
    }

    /// All recorded epochs.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// Mean WAIT count over epochs `[from..]` (skipping warm-up epochs, as
    /// the paper skips the full first checkpoint).
    pub fn mean_wait(&self, from: usize) -> f64 {
        Self::mean(&self.epochs[from.min(self.epochs.len())..], |e| e.wait)
    }

    /// Mean AVOIDED count over epochs `[from..]`.
    pub fn mean_avoided(&self, from: usize) -> f64 {
        Self::mean(&self.epochs[from.min(self.epochs.len())..], |e| e.avoided)
    }

    /// Mean COW count over epochs `[from..]`.
    pub fn mean_cow(&self, from: usize) -> f64 {
        Self::mean(&self.epochs[from.min(self.epochs.len())..], |e| e.cow)
    }

    fn mean(slice: &[EpochStats], f: impl Fn(&EpochStats) -> u64) -> f64 {
        if slice.is_empty() {
            return 0.0;
        }
        slice.iter().map(|e| f(e) as f64).sum::<f64>() / slice.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_classifies_each_type() {
        let mut s = EpochStats::default();
        s.bump(AccessType::Cow);
        s.bump(AccessType::Cow);
        s.bump(AccessType::Wait);
        s.bump(AccessType::Avoided);
        s.bump(AccessType::After);
        assert_eq!(s.dirty_pages, 5);
        assert_eq!(s.count(AccessType::Cow), 2);
        assert_eq!(s.count(AccessType::Wait), 1);
        assert_eq!(s.count(AccessType::Avoided), 1);
        assert_eq!(s.count(AccessType::After), 1);
        assert_eq!(s.count(AccessType::Untouched), 0);
    }

    #[test]
    fn aggregate_means_skip_warmup() {
        let mut agg = StatsAggregate::default();
        agg.push(EpochStats {
            wait: 100,
            avoided: 0,
            ..Default::default()
        });
        agg.push(EpochStats {
            wait: 10,
            avoided: 4,
            ..Default::default()
        });
        agg.push(EpochStats {
            wait: 20,
            avoided: 8,
            ..Default::default()
        });
        assert_eq!(agg.mean_wait(1), 15.0);
        assert_eq!(agg.mean_avoided(1), 6.0);
        assert_eq!(agg.mean_wait(0), (100.0 + 10.0 + 20.0) / 3.0);
    }

    #[test]
    fn aggregate_empty_and_out_of_range() {
        let agg = StatsAggregate::default();
        assert_eq!(agg.mean_wait(0), 0.0);
        let mut agg = StatsAggregate::default();
        agg.push(EpochStats::default());
        assert_eq!(agg.mean_wait(5), 0.0, "from beyond the end is empty");
    }
}
