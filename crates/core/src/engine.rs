//! The checkpoint engine: a deterministic implementation of the paper's
//! Algorithms 1–4, shared by the threaded mprotect runtime and the
//! discrete-event simulator.
//!
//! The engine is a passive state machine. Front-ends drive it through four
//! entry points and supply the actual mechanics (memory protection, storage
//! I/O, blocking, time):
//!
//! * [`EpochEngine::begin_checkpoint`] — Algorithm 1 (`CHECKPOINT`): close
//!   the epoch, snapshot its records into history, schedule the dirty set
//!   and build the flush plan.
//! * [`EpochEngine::on_write`] — Algorithm 2 (`PROTECTED_PAGE_HANDLER`):
//!   classify a first write and decide between proceed / copy-on-write /
//!   wait.
//! * [`EpochEngine::select_next`] — Algorithm 4 (`SELECT_NEXT_PAGE`): pick
//!   the next page to commit, honouring the `WaitedPage` hint and the
//!   current-epoch CoW preference when dynamic hints are enabled.
//! * [`EpochEngine::complete_flush`] — Algorithm 3's post-commit bookkeeping
//!   (release slots, mark `PAGE_PROCESSED`, detect checkpoint completion).
//!
//! Everything reachable from [`EpochEngine::on_write`],
//! [`EpochEngine::complete_wait`] and [`EpochEngine::complete_flush`] is
//! allocation-free, so the threaded runtime may call them from a SIGSEGV
//! handler while holding a [`SpinLock`](crate::spin::SpinLock).
//! [`EpochEngine::begin_checkpoint`] allocates (plan building) and must be
//! called from normal context — which matches the paper, where `CHECKPOINT`
//! is an explicit application-level call.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::config::EngineConfig;
use crate::history::EpochHistory;
use crate::page::{AccessType, FlushItem, FlushSource, PageId, PageState, StateTable, NO_SLOT};
use crate::schedule::FlushPlan;
use crate::stats::{CheckpointPlanInfo, EpochStats};
use crate::{CowSlab, CowSlotStore};

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `begin_checkpoint` while the previous checkpoint is still flushing.
    /// The paper's `CHECKPOINT` waits for completion instead; front-ends
    /// implement that wait and then retry.
    CheckpointInProgress,
    /// The configuration failed validation.
    InvalidConfig(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::CheckpointInProgress => {
                write!(f, "a checkpoint is still in progress")
            }
            EngineError::InvalidConfig(msg) => write!(f, "invalid engine config: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// What the fault handler must do after reporting a first write
/// (Algorithm 2's three-way branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write may proceed immediately; the access was recorded as
    /// `AVOIDED` or `AFTER`.
    Proceed,
    /// A copy-on-write slot was reserved. The caller must copy the page's
    /// *pre-write* content into the slot **before** making the page
    /// writable to anyone (the threaded runtime does the copy while still
    /// holding the engine lock), then proceed. Recorded as `COW`.
    CopyToSlot(u32),
    /// No slot was available or the page is being flushed right now. The
    /// caller must block until
    /// [`StateTable::is_processed`] for this page, then call
    /// [`EpochEngine::complete_wait`], then proceed. The page was published
    /// as the `WaitedPage` hint.
    MustWait,
    /// A racing thread already handled this page this epoch; proceed without
    /// further bookkeeping.
    AlreadyHandled,
}

/// The paper's page manager core (see module docs).
#[derive(Debug)]
pub struct EpochEngine {
    cfg: EngineConfig,
    /// Shared page-state table; waiters poll it lock-free.
    states: Arc<StateTable>,
    history: EpochHistory,
    /// `CowPage` slot assignment: page -> slot or `NO_SLOT`.
    cow_slot_of: Box<[u32]>,
    slab: CowSlab,
    /// Pages that took a CoW slot in the *current* epoch, FIFO; preferred by
    /// `select_next` to recycle slots quickly (§3.1: "we still prefer pages
    /// that triggered copy-on-write, as this keeps the buffer free for dark
    /// times").
    cow_now: VecDeque<PageId>,
    /// The `WaitedPage` hint (single cell, as in the paper).
    waited: Option<PageId>,
    plan: FlushPlan,
    /// Reusable page-id buffer for [`EpochEngine::select_batch`] claims.
    batch_scratch: Vec<PageId>,
    /// Pages of the active checkpoint not yet committed.
    pending: usize,
    /// `CheckpointInProgress`.
    ckpt_active: bool,
    /// Number of `begin_checkpoint` calls served.
    checkpoint_seq: u64,
    current_stats: EpochStats,
}

impl EpochEngine {
    /// Build an engine for a fixed page set.
    pub fn new(cfg: EngineConfig) -> Result<Self, EngineError> {
        cfg.validate().map_err(EngineError::InvalidConfig)?;
        let states = Arc::new(StateTable::new(cfg.pages));
        let slab = CowSlab::new(cfg.cow_slots, cfg.page_bytes, cfg.cow_data);
        let mut cow_now = VecDeque::new();
        cow_now.reserve_exact(cfg.cow_slots as usize + 1);
        Ok(Self {
            history: EpochHistory::new(cfg.pages),
            cow_slot_of: vec![NO_SLOT; cfg.pages].into_boxed_slice(),
            slab,
            cow_now,
            waited: None,
            plan: FlushPlan::empty(),
            batch_scratch: Vec::new(),
            pending: 0,
            ckpt_active: false,
            checkpoint_seq: 0,
            current_stats: EpochStats::default(),
            states,
            cfg,
        })
    }

    /// The engine's configuration.
    #[inline]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Shared page-state table (clone the `Arc` for lock-free waiting).
    #[inline]
    pub fn states(&self) -> &Arc<StateTable> {
        &self.states
    }

    /// `CheckpointInProgress` flag.
    #[inline]
    pub fn checkpoint_active(&self) -> bool {
        self.ckpt_active
    }

    /// Pages of the active checkpoint still to be committed.
    #[inline]
    pub fn pending_pages(&self) -> usize {
        self.pending
    }

    /// Number of checkpoints requested so far.
    #[inline]
    pub fn checkpoints(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Live statistics of the epoch currently accumulating.
    #[inline]
    pub fn current_stats(&self) -> EpochStats {
        let mut s = self.current_stats;
        s.peak_cow_slots = self.slab.peak_in_use();
        s
    }

    /// Access to the epoch history (tests, introspection).
    #[inline]
    pub fn history(&self) -> &EpochHistory {
        &self.history
    }

    /// Read a CoW slot's bytes (committer side).
    #[inline]
    pub fn slab_slot(&self, slot: u32) -> &[u8] {
        self.slab.slot(slot)
    }

    /// The shared CoW byte store. A committer stream clones this `Arc` once
    /// and then reads *claimed* slots lock-free via
    /// [`CowSlotStore::slot`] — see the slot-ownership rule in
    /// [`crate::cow`]. The engine lock is only needed for slot accounting
    /// (acquire/release), never for payload movement.
    #[inline]
    pub fn slab_store(&self) -> &Arc<CowSlotStore> {
        self.slab.store()
    }

    /// Write a CoW slot's bytes (fault-handler side, after
    /// [`WriteOutcome::CopyToSlot`]).
    #[inline]
    pub fn slab_slot_mut(&mut self, slot: u32) -> &mut [u8] {
        self.slab.slot_mut(slot)
    }

    /// Currently occupied CoW slots.
    #[inline]
    pub fn cow_in_use(&self) -> u32 {
        self.slab.in_use()
    }

    /// Algorithm 1: `CHECKPOINT`. Closes the current epoch, schedules its
    /// dirty set for flushing and prepares the flush plan from the history.
    ///
    /// Returns [`EngineError::CheckpointInProgress`] if the previous
    /// checkpoint has not finished; the caller is responsible for waiting
    /// (the paper's lines 2–4) and retrying.
    pub fn begin_checkpoint(&mut self) -> Result<CheckpointPlanInfo, EngineError> {
        if self.ckpt_active {
            return Err(EngineError::CheckpointInProgress);
        }
        debug_assert_eq!(self.slab.in_use(), 0, "slots leaked across checkpoints");
        debug_assert!(self.cow_now.is_empty());

        // Close the epoch's statistics.
        let mut closed = self.current_stats;
        closed.peak_cow_slots = self.slab.peak_in_use();
        self.checkpoint_seq += 1;
        self.current_stats = EpochStats {
            epoch: self.checkpoint_seq,
            ..EpochStats::default()
        };
        self.slab.reset_peak();
        self.waited = None;

        // Dirty/AT/Index -> LastDirty/LastAT/LastIndex (lines 5-9).
        self.history.roll();

        // Schedule every page of LastDirty (lines 15-17), skipping tombstones
        // left by `discard_page`.
        let last = self.history.last();
        let mut scheduled: u64 = 0;
        for &p in last.dirty() {
            if last.access_type(p) == AccessType::Untouched {
                continue; // discarded page
            }
            self.states.set(p, PageState::Scheduled);
            scheduled += 1;
        }
        self.pending = scheduled as usize;
        self.plan = FlushPlan::build(self.cfg.scheduler, self.history.last());
        // The plan filters the same tombstones the loop above skipped; a
        // divergence would desynchronise `planned()`/`remaining()` from the
        // committer's pending count.
        debug_assert_eq!(
            self.plan.planned() as u64,
            scheduled,
            "flush plan disagrees with the scheduled page count"
        );
        self.ckpt_active = self.pending > 0;

        Ok(CheckpointPlanInfo {
            checkpoint: self.checkpoint_seq,
            scheduled_pages: scheduled,
            scheduled_bytes: scheduled * self.cfg.page_bytes as u64,
            closed_epoch: closed,
        })
    }

    /// Algorithm 2: `PROTECTED_PAGE_HANDLER`. Report the first write to page
    /// `p` this epoch and learn how to proceed. Allocation-free.
    pub fn on_write(&mut self, p: PageId) -> WriteOutcome {
        if self.history.current().access_type(p) != AccessType::Untouched {
            // A racing thread fully handled this page already.
            return WriteOutcome::AlreadyHandled;
        }
        match self.states.get(p) {
            PageState::Processed => {
                // Lines 5-10: nothing to preserve; classify by whether the
                // checkpoint is still running.
                let ty = if self.ckpt_active {
                    AccessType::Avoided
                } else {
                    AccessType::After
                };
                self.record(p, ty);
                WriteOutcome::Proceed
            }
            PageState::Scheduled => {
                if let Some(slot) = self.slab.acquire() {
                    // Lines 2-4: reserve a slot; the caller copies the page
                    // into it, then the write proceeds on the original page.
                    self.states.set(p, PageState::Cowed);
                    self.cow_slot_of[p as usize] = slot;
                    if self.cfg.dynamic_hints {
                        // Only the adaptive strategy consumes this queue;
                        // async-no-pattern reaches CoW'd pages through its
                        // static address order.
                        self.cow_now.push_back(p);
                    }
                    self.record(p, AccessType::Cow);
                    WriteOutcome::CopyToSlot(slot)
                } else {
                    // Lines 11-17: no slots left; wait for this very page.
                    self.waited = Some(p);
                    WriteOutcome::MustWait
                }
            }
            PageState::InProgress => {
                self.waited = Some(p);
                WriteOutcome::MustWait
            }
            PageState::Cowed => {
                // A racing thread performed the copy; content is preserved,
                // the write may proceed (AT was recorded by that thread).
                WriteOutcome::AlreadyHandled
            }
        }
    }

    /// Finish a [`WriteOutcome::MustWait`]: the caller observed
    /// `states().is_processed(p)` and now records the `WAIT` access
    /// (Algorithm 2, lines 16-21). Allocation-free.
    pub fn complete_wait(&mut self, p: PageId) {
        debug_assert!(
            self.states.is_processed(p),
            "complete_wait before page {p} was processed"
        );
        if self.waited == Some(p) {
            self.waited = None;
        }
        self.record(p, AccessType::Wait);
    }

    /// Algorithm 4: `SELECT_NEXT_PAGE`. Pick the next page to commit and
    /// lock it (`PAGE_INPROGRESS`). Returns `None` when nothing is currently
    /// selectable — with a single committer stream that means the checkpoint
    /// is complete; with several streams it can also mean every remaining
    /// page is `PAGE_INPROGRESS` on another stream, so callers must check
    /// [`EpochEngine::checkpoint_active`] before concluding the drain is
    /// done.
    pub fn select_next(&mut self) -> Option<FlushItem> {
        if !self.ckpt_active {
            return None;
        }
        if let Some(item) = self.select_dynamic() {
            return Some(item);
        }
        // Lines 8-17: static history order.
        let states = &self.states;
        let next = self
            .plan
            .next(|p| matches!(states.get(p), PageState::Scheduled | PageState::Cowed));
        next.map(|p| self.take(p))
    }

    /// The dynamic-hint half of Algorithm 4: the `WaitedPage` preempts
    /// everything (lines 2-4), then current-epoch CoW pages are preferred
    /// to free slots early (lines 5-7). `None` when no hint applies (or
    /// hints are disabled).
    fn select_dynamic(&mut self) -> Option<FlushItem> {
        if !self.cfg.dynamic_hints {
            return None;
        }
        if let Some(w) = self.waited {
            match self.states.get(w) {
                PageState::Scheduled | PageState::Cowed => return Some(self.take(w)),
                // InProgress: already being committed; Processed: the
                // waiter will wake up on its own.
                _ => {}
            }
        }
        while let Some(&p) = self.cow_now.front() {
            if self.states.get(p) == PageState::Cowed {
                self.cow_now.pop_front();
                return Some(self.take(p));
            }
            // Already taken through another path; drop the stale entry.
            self.cow_now.pop_front();
        }
        None
    }

    /// Batched [`EpochEngine::select_next`]: claim up to `max` pages under
    /// one lock acquisition, in the same priority order, appending to `out`.
    /// Returns how many were claimed.
    ///
    /// This is what the multi-stream committer calls: each worker stream
    /// takes a run of pages per engine-lock acquisition, performs the
    /// storage I/O outside the lock, then completes them. Dynamic hints
    /// (the `WaitedPage` and current-epoch CoW preferences) head the run,
    /// then the remainder is claimed from the static plan in one
    /// [`FlushPlan::next_batch`](crate::schedule::FlushPlan::next_batch)
    /// call. Hints cannot change mid-claim — they are only set under the
    /// same engine lock the caller holds — and hints raised *after* the
    /// batch was claimed are picked up by the next claim (with one stream
    /// and `max == 1` this degenerates to exactly the paper's Algorithm 4
    /// loop).
    ///
    /// Claimed items' sources are stable until the claiming stream calls
    /// [`EpochEngine::complete_flush`]: memory-sourced pages are
    /// `PAGE_INPROGRESS` (writers block in the fault handler), and a
    /// CoW-sourced item's slot can only be released by completing that very
    /// item — so both may be read after unlocking (the slab via a brief
    /// re-lock for [`EpochEngine::slab_slot`]). Amortised allocation-free
    /// (an internal scratch buffer grows to the largest `max` seen).
    pub fn select_batch(&mut self, max: usize, out: &mut Vec<FlushItem>) -> usize {
        if !self.ckpt_active {
            return 0;
        }
        let mut taken = 0;
        // Dynamic hints head the run...
        while taken < max {
            match self.select_dynamic() {
                Some(item) => {
                    out.push(item);
                    taken += 1;
                }
                None => break,
            }
        }
        // ...then one next_batch claim fills the rest from the static plan.
        // Taking the claimed pages *after* the whole run was popped is
        // sound because a FlushPlan lists every scheduled page exactly once
        // (its documented invariant): the pending-state predicate can never
        // admit the same page twice within one run.
        if taken < max {
            let mut scratch = std::mem::take(&mut self.batch_scratch);
            scratch.clear();
            let states = &self.states;
            self.plan.next_batch(
                max - taken,
                |p| matches!(states.get(p), PageState::Scheduled | PageState::Cowed),
                &mut scratch,
            );
            for &p in &scratch {
                out.push(self.take(p));
            }
            taken += scratch.len();
            self.batch_scratch = scratch;
        }
        taken
    }

    /// Post-commit bookkeeping for a flushed page (Algorithm 3, lines 6-14).
    /// Publishes `PAGE_PROCESSED` and reconciles the engine's counters.
    /// Allocation-free.
    pub fn complete_flush(&mut self, item: FlushItem) {
        debug_assert_eq!(
            self.states.get(item.page),
            PageState::InProgress,
            "complete_flush for a page that was not selected"
        );
        self.states.set(item.page, PageState::Processed);
        self.reconcile_flush(item);
    }

    /// Post-commit bookkeeping for a page whose `PAGE_PROCESSED` state the
    /// caller already published through the shared [`StateTable`] — the
    /// multi-stream runtime's fast wake path: after a sub-batch's storage
    /// I/O completes, the stream stores `Processed` for each page *without
    /// the engine lock* (one atomic store per page, waking `MustWait`
    /// writers immediately), then reconciles the engine's counters for the
    /// whole sub-batch under one lock hold via this method.
    ///
    /// Between the publication and this call the page is `Processed` to
    /// every observer — writers proceed (recorded `AVOIDED`/`AFTER`),
    /// `discard_page` no-ops — while the pending count and any CoW slot are
    /// still owed; both settle here. Allocation-free.
    pub fn complete_published(&mut self, item: FlushItem) {
        debug_assert_eq!(
            self.states.get(item.page),
            PageState::Processed,
            "complete_published before the state was published"
        );
        self.reconcile_flush(item);
    }

    /// Shared tail of [`EpochEngine::complete_flush`] /
    /// [`EpochEngine::complete_published`]: release the CoW slot, count the
    /// flush, detect checkpoint completion.
    fn reconcile_flush(&mut self, item: FlushItem) {
        if let FlushSource::CowSlot(slot) = item.source {
            debug_assert_eq!(self.cow_slot_of[item.page as usize], slot);
            self.slab.release(slot);
            self.cow_slot_of[item.page as usize] = NO_SLOT;
            self.current_stats.flushed_from_cow += 1;
        }
        self.current_stats.flushed_pages += 1;
        self.current_stats.flushed_bytes += self.cfg.page_bytes as u64;
        self.pending -= 1;
        if self.pending == 0 {
            self.ckpt_active = false;
        }
    }

    /// Remove a page from checkpointing entirely (used by `free_protected`:
    /// the owning region is going away, its content no longer matters).
    ///
    /// If the page is `InProgress` the committer still holds it; returns
    /// `false` and the caller must wait for `is_processed` and retry.
    pub fn discard_page(&mut self, p: PageId) -> bool {
        match self.states.get(p) {
            PageState::Scheduled => {
                self.states.set(p, PageState::Processed);
                self.pending -= 1;
                if self.pending == 0 {
                    self.ckpt_active = false;
                }
            }
            PageState::Cowed => {
                let slot = std::mem::replace(&mut self.cow_slot_of[p as usize], NO_SLOT);
                debug_assert_ne!(slot, NO_SLOT);
                self.slab.release(slot);
                self.states.set(p, PageState::Processed);
                self.pending -= 1;
                if self.pending == 0 {
                    self.ckpt_active = false;
                }
            }
            PageState::InProgress => return false,
            PageState::Processed => {}
        }
        // Drop the page from the current epoch's dirty set so the *next*
        // checkpoint does not try to flush freed memory.
        self.history.current_mut().unrecord(p);
        if self.waited == Some(p) {
            self.waited = None;
        }
        true
    }

    /// Lock a page for committing and describe where to read it from.
    fn take(&mut self, p: PageId) -> FlushItem {
        let source = match self.states.get(p) {
            PageState::Scheduled => FlushSource::Memory,
            PageState::Cowed => FlushSource::CowSlot(self.cow_slot_of[p as usize]),
            s => unreachable!("take() on page {p} in state {s:?}"),
        };
        self.states.set(p, PageState::InProgress);
        FlushItem { page: p, source }
    }

    /// Record a first write and bump statistics.
    fn record(&mut self, p: PageId, ty: AccessType) {
        if self.history.current_mut().record(p, ty) {
            self.current_stats.bump(ty);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SchedulerKind;

    fn engine(pages: usize, cow_slots: u32) -> EpochEngine {
        EpochEngine::new(EngineConfig::adaptive(pages, 64, cow_slots).without_cow_data()).unwrap()
    }

    /// Drain the whole checkpoint, returning the flush order.
    fn drain(e: &mut EpochEngine) -> Vec<PageId> {
        let mut order = Vec::new();
        while let Some(item) = e.select_next() {
            order.push(item.page);
            e.complete_flush(item);
        }
        order
    }

    #[test]
    fn first_checkpoint_flushes_written_pages_only() {
        let mut e = engine(8, 2);
        assert_eq!(e.on_write(3), WriteOutcome::Proceed);
        assert_eq!(e.on_write(1), WriteOutcome::Proceed);
        let info = e.begin_checkpoint().unwrap();
        assert_eq!(info.checkpoint, 1);
        assert_eq!(info.scheduled_pages, 2);
        assert_eq!(
            info.closed_epoch.after, 2,
            "pre-checkpoint writes are AFTER"
        );
        assert!(e.checkpoint_active());
        let order = drain(&mut e);
        assert_eq!(order.len(), 2);
        assert!(!e.checkpoint_active());
    }

    #[test]
    fn empty_checkpoint_completes_immediately() {
        let mut e = engine(4, 0);
        let info = e.begin_checkpoint().unwrap();
        assert_eq!(info.scheduled_pages, 0);
        assert!(!e.checkpoint_active());
        assert!(e.select_next().is_none());
    }

    #[test]
    fn begin_while_active_is_rejected() {
        let mut e = engine(4, 0);
        e.on_write(0);
        e.begin_checkpoint().unwrap();
        assert_eq!(
            e.begin_checkpoint().unwrap_err(),
            EngineError::CheckpointInProgress
        );
        drain(&mut e);
        assert!(e.begin_checkpoint().is_ok());
    }

    #[test]
    fn write_to_scheduled_page_takes_cow_slot() {
        let mut e = engine(4, 1);
        e.on_write(2);
        e.begin_checkpoint().unwrap();
        match e.on_write(2) {
            WriteOutcome::CopyToSlot(slot) => assert_eq!(slot, 0),
            other => panic!("expected CopyToSlot, got {other:?}"),
        }
        assert_eq!(e.cow_in_use(), 1);
        // The CoW'd page is selected first (dynamic hint) and its flush
        // releases the slot.
        let item = e.select_next().unwrap();
        assert_eq!(item.page, 2);
        assert_eq!(item.source, FlushSource::CowSlot(0));
        e.complete_flush(item);
        assert_eq!(e.cow_in_use(), 0);
        assert!(!e.checkpoint_active());
        assert_eq!(e.current_stats().cow, 1);
    }

    #[test]
    fn write_with_exhausted_slab_must_wait_and_is_prioritized() {
        let mut e = engine(8, 0);
        e.on_write(5);
        e.on_write(6);
        e.begin_checkpoint().unwrap();
        assert_eq!(e.on_write(6), WriteOutcome::MustWait);
        // The waited page jumps the queue even though page 5 was accessed
        // earlier last epoch.
        let item = e.select_next().unwrap();
        assert_eq!(item.page, 6);
        assert_eq!(item.source, FlushSource::Memory);
        e.complete_flush(item);
        assert!(e.states().is_processed(6));
        e.complete_wait(6);
        assert_eq!(e.current_stats().wait, 1);
        let rest = drain(&mut e);
        assert_eq!(rest, vec![5]);
    }

    #[test]
    fn avoided_and_after_classification() {
        let mut e = engine(4, 0);
        e.on_write(0);
        e.on_write(1);
        e.begin_checkpoint().unwrap();
        // Flush page 0 only; then a write to it is AVOIDED (ckpt active).
        let item = e.select_next().unwrap();
        let first = item.page;
        e.complete_flush(item);
        assert_eq!(e.on_write(first), WriteOutcome::Proceed);
        // Finish the checkpoint; a write to a fresh page is AFTER.
        drain(&mut e);
        assert!(!e.checkpoint_active());
        assert_eq!(e.on_write(3), WriteOutcome::Proceed);
        let stats = e.current_stats();
        assert_eq!(stats.avoided, 1);
        assert_eq!(stats.after, 1);
    }

    #[test]
    fn adaptive_history_orders_next_checkpoint() {
        let mut e = engine(16, 0);
        // Epoch 0: touch pages 1,2,3 (AFTER).
        for p in [1, 2, 3] {
            e.on_write(p);
        }
        e.begin_checkpoint().unwrap();
        // Epoch 1: page 3 waits (hint flushes it first); 1 and 2 flushed
        // normally; then re-touch 1,2,3 again in order 2,3,1.
        assert_eq!(e.on_write(3), WriteOutcome::MustWait);
        let item = e.select_next().unwrap();
        assert_eq!(item.page, 3);
        e.complete_flush(item);
        e.complete_wait(3);
        drain(&mut e);
        // Re-dirty in a specific order; all are AVOIDED/AFTER now.
        for p in [2, 1] {
            e.on_write(p);
        }
        // Checkpoint 2: page 3 has WAIT history -> flushed first.
        e.begin_checkpoint().unwrap();
        // 3 wasn't re-touched in epoch 1 after its wait... it *was* recorded
        // as WAIT, so it's in LastDirty with AT=WAIT.
        let order = drain(&mut e);
        assert_eq!(order[0], 3, "WAIT-history page first");
        assert_eq!(&order[1..], &[1, 2], "rest in address order (AFTER bucket)");
    }

    #[test]
    fn no_pattern_ignores_waited_hint() {
        let mut e =
            EpochEngine::new(EngineConfig::no_pattern(8, 64, 0).without_cow_data()).unwrap();
        for p in [0, 1, 2, 3] {
            e.on_write(p);
        }
        e.begin_checkpoint().unwrap();
        assert_eq!(e.on_write(3), WriteOutcome::MustWait);
        // Address order proceeds 0,1,2,3 regardless of the wait on 3.
        let order = drain(&mut e);
        assert_eq!(order, vec![0, 1, 2, 3]);
        e.complete_wait(3);
        assert_eq!(e.current_stats().wait, 1);
    }

    #[test]
    fn cow_preference_recycles_slots() {
        let mut e = engine(8, 1);
        for p in 0..8 {
            e.on_write(p);
        }
        e.begin_checkpoint().unwrap();
        // Page 7 cows (one slot); page 6 must wait (slab full).
        assert!(matches!(e.on_write(7), WriteOutcome::CopyToSlot(_)));
        assert_eq!(e.on_write(6), WriteOutcome::MustWait);
        // Waited page 6 preempts, then the CoW'd page 7 to recycle the slot,
        // then address order for the rest.
        let i1 = e.select_next().unwrap();
        assert_eq!(i1.page, 6);
        e.complete_flush(i1);
        e.complete_wait(6);
        let i2 = e.select_next().unwrap();
        assert_eq!(i2.page, 7);
        assert!(matches!(i2.source, FlushSource::CowSlot(_)));
        e.complete_flush(i2);
        assert_eq!(e.cow_in_use(), 0);
        let rest = drain(&mut e);
        assert_eq!(rest, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn select_batch_claims_runs_and_interleaves_with_streams() {
        let mut e = engine(16, 0);
        for p in 0..8 {
            e.on_write(p);
        }
        e.begin_checkpoint().unwrap();
        // Two "streams" claim disjoint runs.
        let mut a = Vec::new();
        let mut b = Vec::new();
        assert_eq!(e.select_batch(3, &mut a), 3);
        assert_eq!(e.select_batch(3, &mut b), 3);
        let pages_a: Vec<_> = a.iter().map(|i| i.page).collect();
        let pages_b: Vec<_> = b.iter().map(|i| i.page).collect();
        assert!(pages_a.iter().all(|p| !pages_b.contains(p)), "disjoint");
        // Stream B finishes first; the checkpoint stays active because A
        // still holds InProgress pages plus two are unclaimed.
        for item in b {
            e.complete_flush(item);
        }
        assert!(e.checkpoint_active());
        // A drains its run and the tail.
        for item in a {
            e.complete_flush(item);
        }
        let mut tail = Vec::new();
        assert_eq!(e.select_batch(8, &mut tail), 2, "two pages left");
        for item in tail {
            e.complete_flush(item);
        }
        assert!(!e.checkpoint_active());
    }

    #[test]
    fn select_batch_prioritizes_waited_page_within_run() {
        let mut e = engine(8, 0);
        for p in [0, 1, 2, 3] {
            e.on_write(p);
        }
        e.begin_checkpoint().unwrap();
        assert_eq!(e.on_write(3), WriteOutcome::MustWait);
        let mut run = Vec::new();
        e.select_batch(4, &mut run);
        assert_eq!(run[0].page, 3, "waited page heads the batch");
        for item in run {
            e.complete_flush(item);
        }
        e.complete_wait(3);
    }

    #[test]
    fn complete_published_after_external_state_store() {
        // The runtime's fast wake path: PAGE_PROCESSED is stored through the
        // shared StateTable first (lock-free), the engine reconciles later.
        let mut e = engine(4, 1);
        e.on_write(0);
        e.on_write(1);
        e.begin_checkpoint().unwrap();
        assert!(matches!(e.on_write(0), WriteOutcome::CopyToSlot(_)));
        let states = Arc::clone(e.states());
        let mut run = Vec::new();
        assert_eq!(e.select_batch(4, &mut run), 2);
        for item in &run {
            states.set(item.page, PageState::Processed);
            assert!(states.is_processed(item.page));
        }
        assert!(e.checkpoint_active(), "counters not yet reconciled");
        assert_eq!(e.cow_in_use(), 1, "slot still owed");
        for item in run {
            e.complete_published(item);
        }
        assert!(!e.checkpoint_active());
        assert_eq!(e.cow_in_use(), 0);
        let s = e.current_stats();
        assert_eq!(s.flushed_pages, 2);
        assert_eq!(s.flushed_from_cow, 1);
    }

    #[test]
    fn already_handled_on_double_report() {
        let mut e = engine(4, 2);
        e.on_write(1);
        e.begin_checkpoint().unwrap();
        assert!(matches!(e.on_write(1), WriteOutcome::CopyToSlot(_)));
        assert_eq!(e.on_write(1), WriteOutcome::AlreadyHandled);
        drain(&mut e);
    }

    #[test]
    fn discard_scheduled_page_shrinks_checkpoint() {
        let mut e = engine(4, 1);
        e.on_write(0);
        e.on_write(1);
        e.begin_checkpoint().unwrap();
        assert_eq!(e.pending_pages(), 2);
        assert!(e.discard_page(0));
        assert_eq!(e.pending_pages(), 1);
        let order = drain(&mut e);
        assert_eq!(order, vec![1]);
    }

    #[test]
    fn discard_cowed_page_releases_slot() {
        let mut e = engine(4, 1);
        e.on_write(0);
        e.begin_checkpoint().unwrap();
        assert!(matches!(e.on_write(0), WriteOutcome::CopyToSlot(_)));
        assert_eq!(e.cow_in_use(), 1);
        assert!(e.discard_page(0));
        assert_eq!(e.cow_in_use(), 0);
        assert!(!e.checkpoint_active());
    }

    #[test]
    fn discard_in_progress_page_is_refused() {
        let mut e = engine(4, 0);
        e.on_write(0);
        e.begin_checkpoint().unwrap();
        let item = e.select_next().unwrap();
        assert!(!e.discard_page(0), "page is locked by the committer");
        e.complete_flush(item);
        assert!(e.discard_page(0), "trivially succeeds once processed");
    }

    #[test]
    fn discarded_page_leaves_no_plan_tombstone() {
        // Regression: tombstones used to land in the flush queues, so
        // planned() exceeded the scheduled count and select_batch
        // skip-scanned dead entries.
        let mut e = engine(8, 0);
        for p in 0..4 {
            e.on_write(p);
        }
        e.discard_page(2);
        let info = e.begin_checkpoint().unwrap();
        assert_eq!(info.scheduled_pages, 3);
        let mut run = Vec::new();
        assert_eq!(e.select_batch(8, &mut run), 3, "no dead entries");
        let mut pages: Vec<_> = run.iter().map(|i| i.page).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![0, 1, 3]);
        for item in run {
            e.complete_flush(item);
        }
        assert!(!e.checkpoint_active());
    }

    #[test]
    fn discarded_page_not_rescheduled_next_epoch() {
        let mut e = engine(4, 0);
        e.on_write(0);
        e.on_write(1);
        e.begin_checkpoint().unwrap();
        drain(&mut e);
        // Dirty both again, then discard page 0 before the next request.
        e.on_write(0);
        e.on_write(1);
        assert!(e.discard_page(0));
        let info = e.begin_checkpoint().unwrap();
        assert_eq!(info.scheduled_pages, 1);
        assert_eq!(drain(&mut e), vec![1]);
    }

    #[test]
    fn stats_flushed_from_cow_counted() {
        let mut e = engine(4, 2);
        e.on_write(0);
        e.on_write(1);
        e.begin_checkpoint().unwrap();
        assert!(matches!(e.on_write(0), WriteOutcome::CopyToSlot(_)));
        drain(&mut e);
        let s = e.current_stats();
        assert_eq!(s.flushed_pages, 2);
        assert_eq!(s.flushed_from_cow, 1);
        assert_eq!(s.flushed_bytes, 2 * 64);
    }

    #[test]
    fn random_scheduler_flushes_everything() {
        let mut e = EpochEngine::new(
            EngineConfig::adaptive(32, 64, 0)
                .without_cow_data()
                .with_scheduler(SchedulerKind::Random(7)),
        )
        .unwrap();
        for p in 0..32 {
            e.on_write(p);
        }
        e.begin_checkpoint().unwrap();
        let mut order = drain(&mut e);
        order.sort_unstable();
        assert_eq!(order, (0..32).collect::<Vec<_>>());
    }
}
