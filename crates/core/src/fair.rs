//! Fair multi-tenant drain arbitration: deficit round-robin over per-tenant
//! backlogs, with an oldest-first baseline for ablation.
//!
//! The multi-tenant service commits every tenant's epochs into a fast tier
//! and drains them to the durable tier from **one** shared maintenance
//! worker. Which backlog entry that worker serves next is a scheduling
//! policy, and it decides tail latency under skew: oldest-first across all
//! tenants lets one heavy tenant's long backlog starve everyone else's
//! (light tenants' fast tiers fill up behind it and their `begin_epoch`
//! calls block on synchronous eviction), while deficit round-robin (DRR,
//! Shreedhar & Varghese) gives each tenant a byte budget per round so a
//! light tenant's occasional epoch is drained promptly no matter how deep
//! the heavy backlog is.
//!
//! [`DrainQueue`] is a pure data structure (no threads, no clocks) so the
//! runtime service and the discrete-time simulator arbitrate identically.

use std::collections::{HashMap, VecDeque};

/// Arbitration policy of a [`DrainQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPolicy {
    /// Serve entries strictly in arrival order, regardless of tenant — the
    /// single-tenant behaviour generalised naively; the ablation baseline.
    OldestFirst,
    /// Deficit round-robin over tenant backlogs: each round, a tenant's
    /// deficit grows by `quantum` bytes and it may serve entries while the
    /// deficit covers their cost.
    DeficitRoundRobin {
        /// Byte budget added per tenant per round. Larger quanta approach
        /// per-tenant FIFO bursts; smaller quanta interleave more finely.
        quantum: u64,
    },
}

/// One backlog entry handed back by [`DrainQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainItem {
    /// Owning tenant.
    pub tenant: u64,
    /// Caller-defined payload (the service stores the epoch number).
    pub item: u64,
    /// Cost in bytes the arbitration charged for this entry.
    pub cost: u64,
}

/// Entry as stored: `(item, cost, arrival stamp)`.
type Entry = (u64, u64, u64);

/// Multi-tenant drain backlog with pluggable arbitration.
///
/// Entries are pushed per tenant in FIFO order (matching a tiered backend's
/// internal oldest-first drain) and popped according to the configured
/// [`DrainPolicy`]. Within one tenant, order is always FIFO; the policy
/// only decides *which tenant* goes next.
#[derive(Debug)]
pub struct DrainQueue {
    policy: DrainPolicy,
    queues: HashMap<u64, VecDeque<Entry>>,
    /// Tenants with a non-empty queue, in round order (DRR only).
    ring: VecDeque<u64>,
    deficit: HashMap<u64, u64>,
    /// Tenant whose current front-of-ring visit already received its
    /// quantum (DRR grants once per arrival, not once per pop).
    visit: Option<u64>,
    next_stamp: u64,
    len: usize,
}

impl DrainQueue {
    /// An empty queue arbitrated by `policy`.
    pub fn new(policy: DrainPolicy) -> Self {
        Self {
            policy,
            queues: HashMap::new(),
            ring: VecDeque::new(),
            deficit: HashMap::new(),
            visit: None,
            next_stamp: 0,
            len: 0,
        }
    }

    /// The policy this queue arbitrates with.
    pub fn policy(&self) -> DrainPolicy {
        self.policy
    }

    /// Append an entry to `tenant`'s backlog. A zero cost is clamped to 1
    /// so an all-clean epoch cannot starve the round-robin accounting.
    pub fn push(&mut self, tenant: u64, item: u64, cost: u64) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let q = self.queues.entry(tenant).or_default();
        if q.is_empty() && !self.ring.contains(&tenant) {
            self.ring.push_back(tenant);
        }
        q.push_back((item, cost.max(1), stamp));
        self.len += 1;
    }

    /// Remove and return the next entry per the policy, or `None` when
    /// every backlog is empty.
    pub fn pop(&mut self) -> Option<DrainItem> {
        match self.policy {
            DrainPolicy::OldestFirst => self.pop_oldest(),
            DrainPolicy::DeficitRoundRobin { quantum } => self.pop_drr(quantum.max(1)),
        }
    }

    fn pop_oldest(&mut self) -> Option<DrainItem> {
        let (&tenant, _) = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(_, q)| q.front().map(|&(_, _, s)| s).unwrap_or(u64::MAX))?;
        self.take_front(tenant)
    }

    fn pop_drr(&mut self, quantum: u64) -> Option<DrainItem> {
        if self.len == 0 {
            return None;
        }
        let mut rotations = 0usize;
        loop {
            let &tenant = self.ring.front()?;
            // A new arrival at the front of the ring begins a visit and
            // earns one quantum; further pops during the same visit spend
            // the remaining deficit without re-granting, so a tenant that
            // exhausts its budget rotates away instead of monopolising.
            if self.visit != Some(tenant) {
                *self.deficit.entry(tenant).or_insert(0) += quantum;
                self.visit = Some(tenant);
            }
            let cost = self.queues[&tenant].front().map(|&(_, c, _)| c)?;
            let deficit = self.deficit.entry(tenant).or_insert(0);
            if *deficit >= cost {
                *deficit -= cost;
                return self.take_front(tenant);
            }
            self.ring.rotate_left(1);
            rotations += 1;
            if rotations >= self.ring.len() {
                // A full rotation served nothing: every head entry costs
                // more than its tenant's deficit. Fast-forward the rounds
                // in one step instead of spinning quantum-by-quantum.
                let rounds = self
                    .ring
                    .iter()
                    .map(|t| {
                        let c = self.queues[t].front().map(|&(_, c, _)| c).unwrap_or(0);
                        let d = self.deficit.get(t).copied().unwrap_or(0);
                        (c.saturating_sub(d)).div_ceil(quantum)
                    })
                    .min()
                    .unwrap_or(1)
                    .max(1);
                for t in &self.ring {
                    *self.deficit.entry(*t).or_insert(0) += rounds.saturating_mul(quantum);
                }
                rotations = 0;
            }
        }
    }

    fn take_front(&mut self, tenant: u64) -> Option<DrainItem> {
        let q = self.queues.get_mut(&tenant)?;
        let (item, cost, _) = q.pop_front()?;
        self.len -= 1;
        if q.is_empty() {
            self.queues.remove(&tenant);
            self.ring.retain(|&t| t != tenant);
            // A tenant leaving the round forfeits its unspent deficit, or
            // an on/off tenant would accumulate an unbounded burst budget.
            self.deficit.remove(&tenant);
        }
        Some(DrainItem { tenant, item, cost })
    }

    /// Drop every entry of `tenant` (detach).
    pub fn remove_tenant(&mut self, tenant: u64) {
        if let Some(q) = self.queues.remove(&tenant) {
            self.len -= q.len();
        }
        self.ring.retain(|&t| t != tenant);
        self.deficit.remove(&tenant);
        if self.visit == Some(tenant) {
            self.visit = None;
        }
    }

    /// Entries queued for `tenant`.
    pub fn backlog(&self, tenant: u64) -> usize {
        self.queues.get(&tenant).map(VecDeque::len).unwrap_or(0)
    }

    /// Total entries queued across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(q: &mut DrainQueue) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| q.pop().map(|d| (d.tenant, d.item))).collect()
    }

    #[test]
    fn oldest_first_is_arrival_order_across_tenants() {
        let mut q = DrainQueue::new(DrainPolicy::OldestFirst);
        q.push(1, 10, 100);
        q.push(2, 20, 100);
        q.push(1, 11, 100);
        q.push(3, 30, 100);
        assert_eq!(
            drain_order(&mut q),
            vec![(1, 10), (2, 20), (1, 11), (3, 30)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn drr_interleaves_a_heavy_backlog_with_light_tenants() {
        let mut q = DrainQueue::new(DrainPolicy::DeficitRoundRobin { quantum: 100 });
        // Heavy tenant arrives first with a deep backlog...
        for i in 0..8 {
            q.push(0, i, 100);
        }
        // ...then two light tenants with one entry each.
        q.push(1, 100, 100);
        q.push(2, 200, 100);
        let order = drain_order(&mut q);
        let light1 = order.iter().position(|&(t, _)| t == 1).unwrap();
        let light2 = order.iter().position(|&(t, _)| t == 2).unwrap();
        // Under oldest-first both lights would sit at positions 8 and 9;
        // DRR serves them within the first round.
        assert!(light1 <= 2, "light tenant 1 served late: {order:?}");
        assert!(light2 <= 3, "light tenant 2 served late: {order:?}");
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn drr_shares_bytes_not_entry_counts() {
        // Tenant 0 queues big entries, tenant 1 small ones: per round,
        // tenant 1 should serve ~4x as many entries.
        let mut q = DrainQueue::new(DrainPolicy::DeficitRoundRobin { quantum: 400 });
        for i in 0..4 {
            q.push(0, i, 400);
        }
        for i in 0..16 {
            q.push(1, i, 100);
        }
        let order = drain_order(&mut q);
        let first_8: Vec<u64> = order[..8].iter().map(|&(t, _)| t).collect();
        let big = first_8.iter().filter(|&&t| t == 0).count();
        let small = first_8.iter().filter(|&&t| t == 1).count();
        assert!(
            (2..=3).contains(&big) && small >= 5,
            "byte-fair split violated: {order:?}"
        );
    }

    #[test]
    fn drr_fast_forwards_when_costs_exceed_the_quantum() {
        let mut q = DrainQueue::new(DrainPolicy::DeficitRoundRobin { quantum: 1 });
        q.push(7, 1, 1_000_000);
        q.push(8, 2, 500_000);
        // Must terminate promptly despite costs ≫ quantum (fast-forward).
        let order = drain_order(&mut q);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], (8, 2), "cheaper head is reached first");
    }

    #[test]
    fn zero_cost_entries_are_clamped_and_within_tenant_order_is_fifo() {
        let mut q = DrainQueue::new(DrainPolicy::DeficitRoundRobin { quantum: 10 });
        q.push(1, 1, 0);
        q.push(1, 2, 0);
        q.push(1, 3, 0);
        let order = drain_order(&mut q);
        assert_eq!(order, vec![(1, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn remove_tenant_drops_its_backlog_and_deficit() {
        let mut q = DrainQueue::new(DrainPolicy::DeficitRoundRobin { quantum: 10 });
        q.push(1, 1, 10);
        q.push(2, 2, 10);
        q.push(1, 3, 10);
        assert_eq!(q.backlog(1), 2);
        q.remove_tenant(1);
        assert_eq!(q.backlog(1), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(drain_order(&mut q), vec![(2, 2)]);
    }
}
