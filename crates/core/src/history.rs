//! Per-epoch access-pattern bookkeeping: the current epoch's `Dirty`, `AT`
//! and `Index` tables and the previous epoch's `LastDirty`, `LastAT`,
//! `LastIndex` (Algorithm 1 of the paper).
//!
//! An *epoch* is the interval between two consecutive checkpoint requests
//! (§3.1). At each request, the just-finished epoch's records become the
//! history consulted by the scheduler (Algorithm 4), and fresh tables start
//! accumulating. Swapping the two table sets and clearing only the entries
//! that were actually dirty keeps the request O(|Dirty|) with zero
//! steady-state allocation.

use crate::page::{AccessType, PageId};

/// One epoch's worth of access records over a fixed page set.
#[derive(Debug)]
pub struct EpochRecord {
    /// `AT[p]`: access type triggered by page `p` this epoch.
    at: Box<[u8]>,
    /// `Index[p]`: 1-based position of `p`'s first write in the epoch's
    /// access order (0 = not written).
    index: Box<[u64]>,
    /// `Dirty`: pages first-written this epoch, in access order.
    dirty: Vec<PageId>,
    /// Running `AccessOrder` counter.
    counter: u64,
}

impl EpochRecord {
    /// Fresh record for `pages` pages, all `UNTOUCHED`.
    pub fn new(pages: usize) -> Self {
        Self {
            at: vec![AccessType::Untouched as u8; pages].into_boxed_slice(),
            index: vec![0u64; pages].into_boxed_slice(),
            dirty: Vec::with_capacity(pages),
            counter: 0,
        }
    }

    /// Access type recorded for `p` this epoch.
    #[inline]
    pub fn access_type(&self, p: PageId) -> AccessType {
        AccessType::from_u8(self.at[p as usize])
    }

    /// First-write order of `p` (0 if untouched).
    #[inline]
    pub fn index(&self, p: PageId) -> u64 {
        self.index[p as usize]
    }

    /// Pages dirtied so far, in first-write order.
    #[inline]
    pub fn dirty(&self) -> &[PageId] {
        &self.dirty
    }

    /// Number of pages dirtied so far.
    #[inline]
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Record the first write to `p` with the given access type
    /// (Algorithm 2, lines 19–21). First classification wins: a racing
    /// duplicate record for the same page is ignored, matching the paper's
    /// single-writer-per-rank model while staying safe under the engine lock
    /// with multithreaded applications.
    ///
    /// Returns `true` if this was indeed the first record for `p`.
    #[inline]
    pub fn record(&mut self, p: PageId, ty: AccessType) -> bool {
        debug_assert_ne!(ty, AccessType::Untouched, "cannot record UNTOUCHED");
        if self.at[p as usize] != AccessType::Untouched as u8 {
            return false;
        }
        self.at[p as usize] = ty as u8;
        self.counter += 1;
        self.index[p as usize] = self.counter;
        self.dirty.push(p);
        true
    }

    /// Remove a page's record (page freed mid-epoch). Leaves a tombstone in
    /// the dirty list — `at` reverts to `UNTOUCHED` while the list entry
    /// stays — so consumers must skip entries whose access type is
    /// `UNTOUCHED`. O(1), allocation-free (callable under the engine lock).
    #[inline]
    pub fn unrecord(&mut self, p: PageId) {
        self.at[p as usize] = AccessType::Untouched as u8;
        self.index[p as usize] = 0;
    }

    /// Clear only the entries touched this epoch (O(|Dirty|), no allocation).
    fn reset(&mut self) {
        for &p in &self.dirty {
            self.at[p as usize] = AccessType::Untouched as u8;
            self.index[p as usize] = 0;
        }
        self.dirty.clear();
        self.counter = 0;
    }
}

/// The current epoch's record plus the previous epoch's (`Last*`) record.
#[derive(Debug)]
pub struct EpochHistory {
    current: EpochRecord,
    last: EpochRecord,
    /// Number of completed epoch rollovers (== checkpoint requests served).
    epochs: u64,
}

impl EpochHistory {
    /// History over a fixed set of `pages` pages.
    pub fn new(pages: usize) -> Self {
        Self {
            current: EpochRecord::new(pages),
            last: EpochRecord::new(pages),
            epochs: 0,
        }
    }

    /// The in-flight epoch's record.
    #[inline]
    pub fn current(&self) -> &EpochRecord {
        &self.current
    }

    /// Mutable access for recording writes.
    #[inline]
    pub fn current_mut(&mut self) -> &mut EpochRecord {
        &mut self.current
    }

    /// The previous epoch's record (`LastDirty` / `LastAT` / `LastIndex`).
    #[inline]
    pub fn last(&self) -> &EpochRecord {
        &self.last
    }

    /// Number of rollovers performed so far.
    #[inline]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Close the current epoch (checkpoint request): current becomes `Last*`,
    /// and a clean current record starts. O(|previous dirty|), allocation
    /// free after construction.
    pub fn roll(&mut self) {
        std::mem::swap(&mut self.current, &mut self.last);
        self.current.reset();
        self.epochs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_assigns_monotonic_indices_in_access_order() {
        let mut r = EpochRecord::new(10);
        assert!(r.record(7, AccessType::After));
        assert!(r.record(2, AccessType::Cow));
        assert!(r.record(9, AccessType::Wait));
        assert_eq!(r.dirty(), &[7, 2, 9]);
        assert_eq!(r.index(7), 1);
        assert_eq!(r.index(2), 2);
        assert_eq!(r.index(9), 3);
        assert_eq!(r.access_type(2), AccessType::Cow);
        assert_eq!(r.access_type(0), AccessType::Untouched);
    }

    #[test]
    fn duplicate_record_is_ignored_first_wins() {
        let mut r = EpochRecord::new(4);
        assert!(r.record(1, AccessType::Wait));
        assert!(!r.record(1, AccessType::After), "second record ignored");
        assert_eq!(r.access_type(1), AccessType::Wait);
        assert_eq!(r.dirty_len(), 1);
        assert_eq!(r.index(1), 1);
    }

    #[test]
    fn roll_moves_current_into_last_and_cleans_current() {
        let mut h = EpochHistory::new(6);
        h.current_mut().record(3, AccessType::After);
        h.current_mut().record(5, AccessType::After);
        h.roll();
        assert_eq!(h.epochs(), 1);
        assert_eq!(h.last().dirty(), &[3, 5]);
        assert_eq!(h.last().access_type(3), AccessType::After);
        assert_eq!(h.current().dirty_len(), 0);
        assert_eq!(h.current().access_type(3), AccessType::Untouched);
        assert_eq!(h.current().index(3), 0);

        // Second epoch with different pages; last reflects it after roll.
        h.current_mut().record(0, AccessType::Cow);
        h.roll();
        assert_eq!(h.epochs(), 2);
        assert_eq!(h.last().dirty(), &[0]);
        assert_eq!(
            h.last().access_type(3),
            AccessType::Untouched,
            "page 3 was not dirty in epoch 2"
        );
    }

    #[test]
    fn roll_twice_recycles_buffers_without_stale_state() {
        let mut h = EpochHistory::new(4);
        for epoch in 0..5u64 {
            let p = (epoch % 4) as PageId;
            h.current_mut().record(p, AccessType::After);
            h.roll();
            assert_eq!(h.last().dirty(), &[p]);
            assert_eq!(h.last().index(p), 1);
        }
    }
}
