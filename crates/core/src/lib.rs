//! # ai-ckpt-core — the deterministic heart of AI-Ckpt
//!
//! This crate implements the checkpointing *logic* of
//! *AI-Ckpt: Leveraging Memory Access Patterns for Adaptive Asynchronous
//! Incremental Checkpointing* (Nicolae & Cappello, HPDC '13) as a passive,
//! deterministic state machine with no OS dependencies:
//!
//! * the page state machine and access-type taxonomy of §3.3
//!   ([`page`]),
//! * per-epoch access-pattern records and their history ([`history`]),
//! * the bounded copy-on-write slab of §3.1 ([`cow`]),
//! * the flush-ordering policies — the paper's adaptive Algorithm 4 and the
//!   evaluated baselines ([`schedule`]),
//! * and the engine tying them together as Algorithms 1–3
//!   ([`engine`]).
//!
//! Two front-ends drive this engine:
//!
//! * **`ai-ckpt`** (the runtime crate) — real dirty-page tracking with
//!   `mprotect`/`SIGSEGV`, a background committer thread and pluggable
//!   storage backends. The engine's hot entry points are allocation-free so
//!   the fault handler can call them under a [`spin::SpinLock`].
//! * **`ai-ckpt-sim`** — a discrete-event cluster simulator reproducing the
//!   paper's multi-node experiments (Grid'5000 + PVFS, Shamrock + local
//!   disks) on a laptop.
//!
//! Keeping a single implementation of the decision logic means the property
//! tests in this crate (snapshot consistency, flush completeness, slot
//! accounting) certify both front-ends at once.
//!
//! ## Quick tour
//!
//! ```
//! use ai_ckpt_core::{EngineConfig, EpochEngine, WriteOutcome, FlushSource};
//!
//! // 16 pages of 4 KiB, 4 CoW slots, the paper's adaptive strategy.
//! let mut engine = EpochEngine::new(EngineConfig::adaptive(16, 4096, 4)).unwrap();
//!
//! // The application dirties some pages (first writes are reported once).
//! assert_eq!(engine.on_write(3), WriteOutcome::Proceed);
//! assert_eq!(engine.on_write(7), WriteOutcome::Proceed);
//!
//! // CHECKPOINT: schedule the dirty set, then the committer drains it.
//! let plan = engine.begin_checkpoint().unwrap();
//! assert_eq!(plan.scheduled_pages, 2);
//! while let Some(item) = engine.select_next() {
//!     match item.source {
//!         FlushSource::Memory => { /* read the live page, write to storage */ }
//!         FlushSource::CowSlot(s) => { let _bytes = engine.slab_slot(s); }
//!     }
//!     engine.complete_flush(item);
//! }
//! assert!(!engine.checkpoint_active());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cow;
pub mod engine;
pub mod fair;
pub mod hist;
pub mod history;
pub mod page;
pub mod rng;
pub mod schedule;
pub mod spin;
pub mod stats;

pub use config::EngineConfig;
pub use cow::{CowSlab, CowSlotStore};
pub use engine::{EngineError, EpochEngine, WriteOutcome};
pub use fair::{DrainItem, DrainPolicy, DrainQueue};
pub use hist::{LatencyHistogram, LatencySnapshot};
pub use history::{EpochHistory, EpochRecord};
pub use page::{AccessType, FlushItem, FlushSource, PageId, PageState, StateTable, NO_SLOT};
pub use schedule::{FlushPlan, SchedulerKind};
pub use spin::{SpinGuard, SpinLock};
pub use stats::{CheckpointPlanInfo, EpochStats, StatsAggregate};
