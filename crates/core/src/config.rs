//! Engine configuration: page-set geometry, copy-on-write budget and the
//! flush-ordering policy.

use crate::schedule::SchedulerKind;

/// Configuration for an [`EpochEngine`](crate::engine::EpochEngine).
///
/// The engine pre-allocates all of its per-page metadata up front so that the
/// write-fault path never allocates (a hard requirement for the SIGSEGV-driven
/// runtime, and a determinism aid for the simulator). Metadata cost is about
/// 22 bytes per page plus the CoW slab itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of pages the engine tracks. Fixed for the engine's lifetime;
    /// front-ends that grow their protected set must size this to the
    /// maximum (see `max_pages` in the runtime's config).
    pub pages: usize,
    /// Size of one page in bytes. The paper (and the runtime) use the OS
    /// page size (4 KiB on the evaluation testbeds); the simulator may use a
    /// coarser granularity to keep event counts tractable.
    pub page_bytes: usize,
    /// Number of copy-on-write slots (the paper's `Threshold`). The CoW
    /// buffer size in bytes is `cow_slots * page_bytes`. Zero disables
    /// copy-on-write entirely, as in the paper's "0 MB" configurations.
    pub cow_slots: u32,
    /// Flush-ordering policy (Algorithm 4 vs. the baselines).
    pub scheduler: SchedulerKind,
    /// Enable the *current-epoch* adaptations of §3.1: committing the
    /// `WaitedPage` as soon as possible and preferring pages that triggered a
    /// copy-on-write this epoch. `true` for the paper's `our-approach`,
    /// `false` for `async-no-pattern` (which differs only in flush order).
    pub dynamic_hints: bool,
    /// Whether the CoW slab should actually store page bytes. The threaded
    /// runtime and the property tests need the bytes; the simulator only
    /// needs slot accounting and can save the memory.
    pub cow_data: bool,
}

impl EngineConfig {
    /// A conventional configuration: adaptive scheduling with dynamic hints
    /// (the paper's `our-approach`).
    pub fn adaptive(pages: usize, page_bytes: usize, cow_slots: u32) -> Self {
        Self {
            pages,
            page_bytes,
            cow_slots,
            scheduler: SchedulerKind::Adaptive,
            dynamic_hints: true,
            cow_data: true,
        }
    }

    /// The paper's `async-no-pattern` baseline: ascending address order, no
    /// dynamic adaptation, same machinery otherwise.
    pub fn no_pattern(pages: usize, page_bytes: usize, cow_slots: u32) -> Self {
        Self {
            pages,
            page_bytes,
            cow_slots,
            scheduler: SchedulerKind::AddressOrder,
            dynamic_hints: false,
            cow_data: true,
        }
    }

    /// Disable CoW data storage (simulator use).
    pub fn without_cow_data(mut self) -> Self {
        self.cow_data = false;
        self
    }

    /// Override the scheduler kind.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Override the dynamic-hints flag.
    pub fn with_dynamic_hints(mut self, dynamic_hints: bool) -> Self {
        self.dynamic_hints = dynamic_hints;
        self
    }

    /// Total bytes of the protected set.
    pub fn total_bytes(&self) -> u64 {
        self.pages as u64 * self.page_bytes as u64
    }

    /// Copy-on-write budget in bytes (the paper quotes this as a fraction of
    /// application memory; e.g. 16 MiB for the synthetic benchmark).
    pub fn cow_bytes(&self) -> u64 {
        self.cow_slots as u64 * self.page_bytes as u64
    }

    /// Validate invariants; returns a human-readable error string on misuse.
    pub fn validate(&self) -> Result<(), String> {
        if self.pages == 0 {
            return Err("EngineConfig.pages must be > 0".into());
        }
        if self.pages > PageLimit::MAX_PAGES {
            return Err(format!(
                "EngineConfig.pages {} exceeds the PageId limit {}",
                self.pages,
                PageLimit::MAX_PAGES
            ));
        }
        if self.page_bytes == 0 {
            return Err("EngineConfig.page_bytes must be > 0".into());
        }
        Ok(())
    }
}

/// Limits implied by the compact [`PageId`](crate::page::PageId) type.
pub struct PageLimit;

impl PageLimit {
    /// `u32::MAX` is reserved as a sentinel in a few packed tables.
    pub const MAX_PAGES: usize = (u32::MAX - 1) as usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_preset_matches_paper_defaults() {
        let c = EngineConfig::adaptive(65536, 4096, 4096);
        assert_eq!(c.scheduler, SchedulerKind::Adaptive);
        assert!(c.dynamic_hints);
        assert_eq!(c.total_bytes(), 256 * 1024 * 1024);
        assert_eq!(c.cow_bytes(), 16 * 1024 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn no_pattern_preset_disables_adaptation() {
        let c = EngineConfig::no_pattern(1024, 4096, 16);
        assert_eq!(c.scheduler, SchedulerKind::AddressOrder);
        assert!(!c.dynamic_hints);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(EngineConfig::adaptive(0, 4096, 0).validate().is_err());
        assert!(EngineConfig::adaptive(16, 0, 0).validate().is_err());
        assert!(EngineConfig::adaptive(usize::MAX, 4096, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_overrides_apply() {
        let c = EngineConfig::adaptive(16, 4096, 4)
            .without_cow_data()
            .with_scheduler(SchedulerKind::ReverseAddress)
            .with_dynamic_hints(false);
        assert!(!c.cow_data);
        assert!(!c.dynamic_hints);
        assert_eq!(c.scheduler, SchedulerKind::ReverseAddress);
    }
}
