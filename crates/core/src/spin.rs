//! A minimal spinlock that is safe to take inside a signal handler.
//!
//! The threaded runtime serialises the engine between the application's
//! SIGSEGV handler and the background committer. Ordinary mutexes
//! (`std::sync::Mutex`, `parking_lot::Mutex`) are off-limits in signal
//! context: they may allocate, use thread-local state, or interact with the
//! thread parker. A raw test-and-test-and-set spinlock with exponential
//! backoff uses nothing but atomics and `spin_loop`, which is
//! async-signal-safe.
//!
//! Discipline required of callers (documented, asserted in tests): a thread
//! must never write to *protected* application memory while holding the
//! lock, otherwise its own fault handler would try to re-acquire it.
//! Critical sections must stay short (no I/O) — the committer performs
//! storage writes outside the lock.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// Mutual exclusion by busy-waiting; usable from signal handlers.
#[derive(Debug, Default)]
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to `T`; `T: Send` suffices for
// both Send and Sync, exactly like std's Mutex.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the lock, spinning until available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a plain load to avoid hammering
            // the cache line with RMW traffic (guide: "Rust Atomics and
            // Locks", ch. 4).
            if !self.locked.swap(true, Ordering::Acquire) {
                return SpinGuard { lock: self };
            }
            while self.locked.load(Ordering::Relaxed) {
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Long holder (e.g. checkpoint-request setup): yield the
                    // CPU instead of burning it. `sched_yield` via
                    // `yield_now` is async-signal-safe on Linux.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Try to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if !self.locked.swap(true, Ordering::Acquire) {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// RAII guard; releases on drop.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves exclusive ownership.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn exclusive_increments_from_many_threads() {
        let lock = Arc::new(SpinLock::new(0u64));
        let threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), threads * per_thread);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(1);
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn into_inner_returns_value() {
        let lock = SpinLock::new(vec![1, 2, 3]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3]);
    }
}
