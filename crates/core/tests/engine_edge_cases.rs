//! Edge-case tests for the engine that the module-level unit tests and the
//! randomised property tests are unlikely to pin down explicitly.

use ai_ckpt_core::{
    EngineConfig, EngineError, EpochEngine, FlushSource, SchedulerKind, WriteOutcome,
};

fn engine(pages: usize, cow: u32) -> EpochEngine {
    EpochEngine::new(EngineConfig::adaptive(pages, 128, cow).without_cow_data()).unwrap()
}

fn drain(e: &mut EpochEngine) -> Vec<u32> {
    let mut order = Vec::new();
    while let Some(item) = e.select_next() {
        order.push(item.page);
        e.complete_flush(item);
    }
    order
}

#[test]
fn error_display_is_informative() {
    assert_eq!(
        EngineError::CheckpointInProgress.to_string(),
        "a checkpoint is still in progress"
    );
    assert!(EngineError::InvalidConfig("x".into())
        .to_string()
        .contains("x"));
    let bad = EpochEngine::new(EngineConfig::adaptive(0, 128, 0)).unwrap_err();
    assert!(matches!(bad, EngineError::InvalidConfig(_)));
}

#[test]
fn avoided_vs_after_transitions_across_epochs() {
    let mut e = engine(4, 0);
    e.on_write(0);
    e.on_write(1);
    e.begin_checkpoint().unwrap();
    // Flush page 0; touch it -> AVOIDED (checkpoint still active on page 1).
    let i0 = e.select_next().unwrap();
    let p0 = i0.page;
    e.complete_flush(i0);
    assert_eq!(e.on_write(p0), WriteOutcome::Proceed);
    // Finish; touch page 2 -> AFTER.
    drain(&mut e);
    e.on_write(2);
    let s = e.current_stats();
    assert_eq!((s.avoided, s.after), (1, 1));

    // Next epoch: AVOIDED page flushes before AFTER page per Algorithm 4.
    e.begin_checkpoint().unwrap();
    let order = drain(&mut e);
    assert_eq!(order.first().copied(), Some(p0), "AVOIDED bucket first");
    assert!(order.contains(&2));
}

#[test]
fn wait_history_beats_cow_history_next_epoch() {
    let mut e = engine(8, 1);
    e.on_write(5);
    e.on_write(6);
    e.begin_checkpoint().unwrap();
    // Page 6 takes the single CoW slot; page 5 must wait.
    assert!(matches!(e.on_write(6), WriteOutcome::CopyToSlot(_)));
    assert_eq!(e.on_write(5), WriteOutcome::MustWait);
    // Boost flushes 5 first, then the cow'd 6.
    let first = e.select_next().unwrap();
    assert_eq!(first.page, 5);
    e.complete_flush(first);
    e.complete_wait(5);
    drain(&mut e);
    // Epoch 2: LastAT[5]=WAIT, LastAT[6]=COW -> 5 before 6.
    e.begin_checkpoint().unwrap();
    let order = drain(&mut e);
    assert_eq!(order, vec![5, 6]);
}

#[test]
fn cow_slot_data_round_trip() {
    let mut e = EpochEngine::new(EngineConfig::adaptive(2, 16, 1)).unwrap();
    e.on_write(0);
    e.begin_checkpoint().unwrap();
    let slot = match e.on_write(0) {
        WriteOutcome::CopyToSlot(s) => s,
        other => panic!("expected CoW, got {other:?}"),
    };
    e.slab_slot_mut(slot).copy_from_slice(&[7u8; 16]);
    let item = e.select_next().unwrap();
    assert_eq!(item.source, FlushSource::CowSlot(slot));
    assert_eq!(e.slab_slot(slot), &[7u8; 16]);
    e.complete_flush(item);
    assert_eq!(e.cow_in_use(), 0);
}

#[test]
fn reverse_scheduler_and_hints_compose() {
    let mut e = EpochEngine::new(
        EngineConfig::adaptive(6, 128, 0)
            .without_cow_data()
            .with_scheduler(SchedulerKind::ReverseAddress),
    )
    .unwrap();
    for p in 0..6 {
        e.on_write(p);
    }
    e.begin_checkpoint().unwrap();
    // Hint on page 1 overrides the reverse order momentarily.
    assert_eq!(e.on_write(1), WriteOutcome::MustWait);
    let first = e.select_next().unwrap();
    assert_eq!(first.page, 1, "waited page preempts");
    e.complete_flush(first);
    e.complete_wait(1);
    let rest = drain(&mut e);
    assert_eq!(rest, vec![5, 4, 3, 2, 0], "then strict reverse address");
}

#[test]
fn tombstoned_pages_never_reach_storage() {
    let mut e = engine(6, 0);
    for p in 0..6 {
        e.on_write(p);
    }
    // Free half of the region mid-epoch.
    for p in [1, 3, 5] {
        assert!(e.discard_page(p));
    }
    let info = e.begin_checkpoint().unwrap();
    assert_eq!(info.scheduled_pages, 3);
    let order = drain(&mut e);
    assert_eq!(order, vec![0, 2, 4]);
}

#[test]
fn untouched_pages_are_never_flushed() {
    let mut e = engine(128, 0);
    for p in (0..128).step_by(7) {
        e.on_write(p);
    }
    e.begin_checkpoint().unwrap();
    let flushed = drain(&mut e);
    let expected: Vec<u32> = (0..128).step_by(7).collect();
    assert_eq!(flushed, expected, "address order of the AFTER bucket");
    // Epoch 2 with no writes: empty checkpoint.
    let info = e.begin_checkpoint().unwrap();
    assert_eq!(info.scheduled_pages, 0);
    assert!(!e.checkpoint_active());
}

#[test]
fn per_epoch_indices_restart_from_one() {
    let mut e = engine(4, 0);
    e.on_write(3);
    e.on_write(1);
    e.begin_checkpoint().unwrap();
    drain(&mut e);
    e.on_write(2);
    assert_eq!(
        e.history().current().index(2),
        1,
        "fresh epoch, fresh order"
    );
    assert_eq!(e.history().last().index(3), 1);
    assert_eq!(e.history().last().index(1), 2);
}

#[test]
fn stats_peak_cow_slots_reported_per_epoch() {
    let mut e = engine(8, 4);
    for p in 0..4 {
        e.on_write(p);
    }
    e.begin_checkpoint().unwrap();
    for p in 0..3 {
        assert!(matches!(e.on_write(p), WriteOutcome::CopyToSlot(_)));
    }
    drain(&mut e);
    let info = e.begin_checkpoint().unwrap();
    assert_eq!(info.closed_epoch.peak_cow_slots, 3);
    assert_eq!(info.closed_epoch.cow, 3);
}
