//! Property-based tests for the checkpoint engine.
//!
//! The central invariant of asynchronous incremental checkpointing — the one
//! the paper's whole design protects — is *snapshot consistency*: the data
//! committed for checkpoint `n` must equal the content of the protected
//! memory at the moment `CHECKPOINT` was called, no matter how application
//! writes interleave with the background flushing. These tests drive the
//! engine with arbitrary interleavings of writes, single-page flush steps
//! and checkpoint requests against a model "memory", and assert the
//! invariant (plus completeness and slot accounting) on every checkpoint.

use ai_ckpt_core::rng::SplitMix64;
use ai_ckpt_core::{
    AccessType, EngineConfig, EpochEngine, FlushSource, SchedulerKind, WriteOutcome,
};
use std::collections::HashMap;

const PAGE_BYTES: usize = 8;

/// One step of the generated workload.
#[derive(Debug, Clone)]
enum Op {
    /// The application writes `val` over a whole page.
    Write { page: u32, val: u8 },
    /// The committer flushes one page (if a checkpoint is active).
    FlushOne,
    /// The application requests a checkpoint (waiting for the previous one
    /// to drain first, as Algorithm 1 does).
    Checkpoint,
}

/// Seeded workload generator (stands in for the proptest strategies the
/// original tests used; the weights are the same 4:3:1).
fn gen_ops(rng: &mut SplitMix64, pages: u32, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.next_below(8) {
            0..=3 => Op::Write {
                page: rng.next_below(pages as u64) as u32,
                val: rng.next_u64() as u8,
            },
            4..=6 => Op::FlushOne,
            _ => Op::Checkpoint,
        })
        .collect()
}

/// Test harness: engine + model memory + model stable storage.
struct Harness {
    engine: EpochEngine,
    /// The application's live memory, one flat buffer.
    memory: Vec<u8>,
    /// What reached "stable storage", per page, for the active checkpoint.
    storage: HashMap<u32, Vec<u8>>,
    /// Expected snapshot (memory at CHECKPOINT time) for scheduled pages.
    expected: HashMap<u32, Vec<u8>>,
    /// Pages already first-written this epoch (their protection is lifted,
    /// so subsequent writes bypass the engine).
    touched: Vec<bool>,
    pages: u32,
    checkpoints_verified: usize,
    flushes_per_checkpoint: Vec<usize>,
}

impl Harness {
    fn new(pages: u32, cow_slots: u32, scheduler: SchedulerKind, hints: bool) -> Self {
        let cfg = EngineConfig::adaptive(pages as usize, PAGE_BYTES, cow_slots)
            .with_scheduler(scheduler)
            .with_dynamic_hints(hints);
        Self {
            engine: EpochEngine::new(cfg).unwrap(),
            memory: vec![0u8; pages as usize * PAGE_BYTES],
            storage: HashMap::new(),
            expected: HashMap::new(),
            touched: vec![false; pages as usize],
            pages,
            checkpoints_verified: 0,
            flushes_per_checkpoint: Vec::new(),
        }
    }

    fn page_buf(&self, p: u32) -> &[u8] {
        let s = p as usize * PAGE_BYTES;
        &self.memory[s..s + PAGE_BYTES]
    }

    fn write_page(&mut self, p: u32, val: u8) {
        if !self.touched[p as usize] {
            // First write this epoch: goes through the fault handler.
            match self.engine.on_write(p) {
                WriteOutcome::Proceed | WriteOutcome::AlreadyHandled => {}
                WriteOutcome::CopyToSlot(slot) => {
                    // Preserve the pre-write content for the committer.
                    let page: Vec<u8> = self.page_buf(p).to_vec();
                    self.engine.slab_slot_mut(slot).copy_from_slice(&page);
                }
                WriteOutcome::MustWait => {
                    // The application blocks; the committer keeps flushing
                    // until this page is processed.
                    while !self.engine.states().is_processed(p) {
                        assert!(
                            self.flush_one(),
                            "engine stalled while a writer waits on page {p}"
                        );
                    }
                    self.engine.complete_wait(p);
                }
            }
            self.touched[p as usize] = true;
        }
        let s = p as usize * PAGE_BYTES;
        self.memory[s..s + PAGE_BYTES].fill(val);
    }

    /// Flush a single page; returns false when nothing was selectable.
    fn flush_one(&mut self) -> bool {
        let Some(item) = self.engine.select_next() else {
            return false;
        };
        let data: Vec<u8> = match item.source {
            FlushSource::Memory => self.page_buf(item.page).to_vec(),
            FlushSource::CowSlot(slot) => self.engine.slab_slot(slot).to_vec(),
        };
        self.storage.insert(item.page, data);
        self.engine.complete_flush(item);
        if !self.engine.checkpoint_active() {
            self.verify_checkpoint();
        }
        true
    }

    fn checkpoint(&mut self) {
        // Algorithm 1 lines 2-4: wait (here: drive) until the previous
        // checkpoint completes.
        while self.engine.checkpoint_active() {
            assert!(self.flush_one());
        }
        self.storage.clear();
        self.expected.clear();
        let info = self.engine.begin_checkpoint().unwrap();
        // The snapshot the checkpoint must capture: memory *now*, for every
        // scheduled page.
        let scheduled: Vec<u32> = self
            .engine
            .history()
            .last()
            .dirty()
            .iter()
            .copied()
            .filter(|&p| self.engine.history().last().access_type(p) != AccessType::Untouched)
            .collect();
        assert_eq!(scheduled.len() as u64, info.scheduled_pages);
        for p in scheduled {
            self.expected.insert(p, self.page_buf(p).to_vec());
        }
        // New epoch: every page is write-protected again.
        self.touched.iter_mut().for_each(|t| *t = false);
        self.flushes_per_checkpoint.push(0);
        if !self.engine.checkpoint_active() {
            self.verify_checkpoint(); // empty checkpoint
        }
    }

    fn verify_checkpoint(&mut self) {
        // Completeness: exactly the scheduled pages reached storage.
        let mut stored: Vec<u32> = self.storage.keys().copied().collect();
        let mut wanted: Vec<u32> = self.expected.keys().copied().collect();
        stored.sort_unstable();
        wanted.sort_unstable();
        assert_eq!(stored, wanted, "flushed page set != scheduled page set");
        // Snapshot consistency: committed bytes equal memory-at-CHECKPOINT.
        for (p, want) in &self.expected {
            assert_eq!(
                self.storage.get(p).unwrap(),
                want,
                "page {p} committed with post-checkpoint data"
            );
        }
        // Slot accounting: all CoW slots returned.
        assert_eq!(self.engine.cow_in_use(), 0, "CoW slots leaked");
        self.checkpoints_verified += 1;
    }

    fn run(&mut self, ops: &[Op]) {
        for op in ops {
            match *op {
                Op::Write { page, val } => self.write_page(page % self.pages, val),
                Op::FlushOne => {
                    self.flush_one();
                }
                Op::Checkpoint => self.checkpoint(),
            }
        }
        // Drain whatever is still in flight so the last checkpoint verifies.
        while self.engine.checkpoint_active() {
            assert!(self.flush_one());
        }
    }
}

/// The flagship invariant, for the paper's adaptive strategy.
#[test]
fn snapshot_consistency_adaptive() {
    let mut rng = SplitMix64::new(0xA1);
    for case in 0..192u64 {
        let cow_slots = (case % 5) as u32;
        let len = 1 + rng.next_below(199) as usize;
        let ops = gen_ops(&mut rng, 12, len);
        let mut h = Harness::new(12, cow_slots, SchedulerKind::Adaptive, true);
        h.run(&ops);
    }
}

/// Same invariant for the async-no-pattern baseline (address order, no
/// dynamic hints) — correctness must not depend on the schedule.
#[test]
fn snapshot_consistency_no_pattern() {
    let mut rng = SplitMix64::new(0xB2);
    for case in 0..192u64 {
        let cow_slots = (case % 5) as u32;
        let len = 1 + rng.next_below(199) as usize;
        let ops = gen_ops(&mut rng, 12, len);
        let mut h = Harness::new(12, cow_slots, SchedulerKind::AddressOrder, false);
        h.run(&ops);
    }
}

/// And for the ablation schedulers.
#[test]
fn snapshot_consistency_other_schedulers() {
    let mut rng = SplitMix64::new(0xC3);
    for case in 0..144u64 {
        let cow_slots = (case % 4) as u32;
        let kind = [
            SchedulerKind::AccessOrder,
            SchedulerKind::ReverseAddress,
            SchedulerKind::Random(0xC0FFEE),
        ][(case / 4 % 3) as usize];
        let len = 1 + rng.next_below(149) as usize;
        let ops = gen_ops(&mut rng, 10, len);
        let mut h = Harness::new(10, cow_slots, kind, true);
        h.run(&ops);
    }
}

/// Every dirty page is flushed exactly once per checkpoint and the
/// engine always drains (no live-lock, no lost pages).
#[test]
fn flush_completeness() {
    let mut rng = SplitMix64::new(0xD4);
    for _ in 0..128u64 {
        let len = 1 + rng.next_below(119) as usize;
        let ops = gen_ops(&mut rng, 8, len);
        let mut h = Harness::new(8, 2, SchedulerKind::Adaptive, true);
        h.run(&ops);
        // If any checkpoint was requested it must have verified.
        let requested = ops.iter().filter(|o| matches!(o, Op::Checkpoint)).count();
        assert!(h.checkpoints_verified >= requested.min(1));
    }
}

/// Deterministic regression companion: the same harness, fixed scenario,
/// checked without proptest shrinkage in the way.
#[test]
fn harness_smoke() {
    let mut h = Harness::new(4, 1, SchedulerKind::Adaptive, true);
    h.run(&[
        Op::Write { page: 0, val: 1 },
        Op::Write { page: 1, val: 2 },
        Op::Checkpoint,
        Op::Write { page: 0, val: 3 }, // CoW or wait during flush
        Op::Write { page: 1, val: 4 },
        Op::FlushOne,
        Op::FlushOne,
        Op::Checkpoint,
        Op::FlushOne,
        Op::FlushOne,
    ]);
    assert!(h.checkpoints_verified >= 2);
}
