//! # ai-ckpt-repro — reproduction of AI-Ckpt (HPDC '13)
//!
//! Umbrella crate tying the workspace together for the examples and
//! integration tests. The functionality lives in the member crates:
//!
//! * [`ai_ckpt`] — the runtime (page manager, `CHECKPOINT`, restore);
//! * [`ai_ckpt_core`] — the deterministic engine (Algorithms 1–4);
//! * [`ai_ckpt_mem`] — mprotect/SIGSEGV substrate;
//! * [`ai_ckpt_storage`] — storage backends and incremental restore;
//! * [`ai_ckpt_service`] — the multi-tenant checkpoint service (shared
//!   worker pools, fair drain arbitration, per-tenant quotas);
//! * [`ai_ckpt_coord`] — coordinated multi-rank checkpoint groups
//!   (two-phase global commit, group restore);
//! * [`ai_ckpt_sim`] — the discrete-event cluster simulator;
//! * [`ai_ckpt_bench`] — the figure harness.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory;
//! the `figures` binary in `ai-ckpt-bench` regenerates the paper-vs-measured
//! record.

pub use ai_ckpt;
pub use ai_ckpt_bench;
pub use ai_ckpt_coord;
pub use ai_ckpt_core;
pub use ai_ckpt_mem;
pub use ai_ckpt_service;
pub use ai_ckpt_sim;
pub use ai_ckpt_storage;
